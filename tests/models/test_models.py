"""Tests for the SEVulDet network and the BRNN baselines."""

import numpy as np
import pytest

from repro.models.bgru import BGRUNet
from repro.models.blstm import BLSTMNet
from repro.models.cnn_variants import (ABLATION_BUILDERS, cnn_multi_att,
                                       cnn_token_att, plain_cnn)
from repro.models.sevuldet import DECISION_THRESHOLD, SEVulDetNet


class TestSEVulDetNet:
    def test_flexible_length_forward(self):
        model = SEVulDetNet(vocab_size=20, dim=8, channels=8)
        for length in (5, 17, 60):
            ids = np.random.default_rng(0).integers(
                0, 20, size=(3, length))
            logits = model(ids)
            assert logits.shape == (3,)

    def test_fixed_length_attribute_none(self):
        assert SEVulDetNet(10).fixed_length is None

    def test_predict_proba_in_01(self):
        model = SEVulDetNet(vocab_size=20, dim=8, channels=8)
        ids = np.zeros((2, 10), dtype=np.int64)
        probs = model.predict_proba(ids)
        assert ((probs >= 0) & (probs <= 1)).all()

    def test_decision_threshold_is_papers(self):
        assert DECISION_THRESHOLD == 0.8

    def test_attention_weights_hook(self):
        model = SEVulDetNet(vocab_size=20, dim=8, channels=8)
        ids = np.random.default_rng(0).integers(0, 20, size=(1, 12))
        weights = model.attention_weights(ids)
        assert weights.shape == (1, 12)
        assert abs(weights.sum() - 1.0) < 1e-9

    def test_attention_hook_requires_token_attention(self):
        model = SEVulDetNet(vocab_size=20, dim=8, channels=8,
                            use_token_attention=False)
        with pytest.raises(ValueError):
            model.attention_weights(np.zeros((1, 5), dtype=np.int64))

    def test_pretrained_embeddings_loaded(self):
        weights = np.random.default_rng(0).normal(size=(20, 8))
        model = SEVulDetNet(vocab_size=20, dim=8, pretrained=weights)
        assert np.allclose(model.embedding.weight.data, weights)

    def test_seed_determinism(self):
        ids = np.arange(10).reshape(1, 10) % 5
        a = SEVulDetNet(5, dim=6, channels=4, seed=3)
        b = SEVulDetNet(5, dim=6, channels=4, seed=3)
        a.eval(), b.eval()
        assert np.allclose(a(ids).data, b(ids).data)

    def test_gradients_reach_embedding(self):
        model = SEVulDetNet(vocab_size=10, dim=6, channels=4)
        ids = np.array([[1, 2, 3, 4, 5]])
        model(ids).sum().backward()
        assert model.embedding.weight.grad is not None
        assert np.abs(model.embedding.weight.grad).sum() > 0


class TestAblationVariants:
    def test_plain_cnn_has_no_attention(self):
        model = plain_cnn(10, dim=6)
        assert not model.use_token_attention and not model.use_cbam

    def test_token_att_variant(self):
        model = cnn_token_att(10, dim=6)
        assert model.use_token_attention and not model.use_cbam

    def test_multi_att_variant(self):
        model = cnn_multi_att(10, dim=6)
        assert model.use_token_attention and model.use_cbam

    def test_registry_names_match_table3(self):
        assert set(ABLATION_BUILDERS) == \
            {"CNN", "CNN-TokenATT", "CNN-MultiATT"}

    def test_param_counts_increase_with_attention(self):
        base = plain_cnn(10, dim=6).num_parameters()
        token = cnn_token_att(10, dim=6).num_parameters()
        multi = cnn_multi_att(10, dim=6).num_parameters()
        assert base < token < multi


class TestBRNNBaselines:
    @pytest.mark.parametrize("cls", [BLSTMNet, BGRUNet])
    def test_forward_shape(self, cls):
        model = cls(vocab_size=15, dim=8, hidden=6, time_steps=12)
        ids = np.zeros((4, 12), dtype=np.int64)
        assert model(ids).shape == (4,)

    @pytest.mark.parametrize("cls", [BLSTMNet, BGRUNet])
    def test_wrong_length_rejected(self, cls):
        model = cls(vocab_size=15, dim=8, hidden=6, time_steps=12)
        with pytest.raises(ValueError):
            model(np.zeros((2, 9), dtype=np.int64))

    @pytest.mark.parametrize("cls", [BLSTMNet, BGRUNet])
    def test_fixed_length_attribute(self, cls):
        assert cls(10, time_steps=37).fixed_length == 37

    def test_predict_proba(self):
        model = BLSTMNet(vocab_size=10, dim=4, hidden=4, time_steps=6)
        probs = model.predict_proba(np.zeros((3, 6), dtype=np.int64))
        assert probs.shape == (3,)
        assert ((probs >= 0) & (probs <= 1)).all()
