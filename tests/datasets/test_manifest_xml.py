"""Tests for SARD-style manifest.xml round-tripping."""

from repro.datasets.manifest_xml import (export_corpus, import_corpus,
                                         read_manifest, write_manifest)
from repro.datasets.sard import generate_sard_corpus


class TestManifestRoundTrip:
    def test_write_read_roundtrip(self, tmp_path):
        cases = generate_sard_corpus(12, seed=9)
        manifest = tmp_path / "manifest.xml"
        write_manifest(cases, manifest)
        entries = read_manifest(manifest)
        assert len(entries) == len(cases)
        for case, entry in zip(cases, entries):
            assert entry["name"] == case.name
            assert entry["vulnerable"] == case.vulnerable
            assert entry["flaw_lines"] == case.vulnerable_lines
            assert entry["category"] == case.category

    def test_flaw_lines_carry_cwe(self, tmp_path):
        cases = [c for c in generate_sard_corpus(20, seed=10)
                 if c.vulnerable][:3]
        manifest = tmp_path / "m.xml"
        write_manifest(cases, manifest)
        for case, entry in zip(cases, read_manifest(manifest)):
            assert entry["cwe"] == case.cwe

    def test_export_import_full_corpus(self, tmp_path):
        cases = generate_sard_corpus(10, seed=11)
        export_corpus(cases, tmp_path / "corpus")
        restored = import_corpus(tmp_path / "corpus")
        assert len(restored) == len(cases)
        for original, loaded in zip(cases, restored):
            assert loaded.source == original.source
            assert loaded.vulnerable == original.vulnerable
            assert loaded.vulnerable_lines == original.vulnerable_lines
            assert loaded.cwe == original.cwe
            assert loaded.origin == original.origin

    def test_meta_entries_preserved_as_strings(self, tmp_path):
        cases = generate_sard_corpus(3, seed=12)
        export_corpus(cases, tmp_path / "corpus")
        restored = import_corpus(tmp_path / "corpus")
        for original, loaded in zip(cases, restored):
            assert loaded.meta["template"] == \
                original.meta["template"]

    def test_imported_corpus_feeds_pipeline(self, tmp_path):
        from repro.core.pipeline import extract_gadgets
        cases = generate_sard_corpus(6, seed=13)
        export_corpus(cases, tmp_path / "corpus")
        restored = import_corpus(tmp_path / "corpus")
        direct = extract_gadgets(cases)
        roundtripped = extract_gadgets(restored)
        assert [g.tokens for g in direct] == \
            [g.tokens for g in roundtripped]
        assert [g.label for g in direct] == \
            [g.label for g in roundtripped]
