"""AST node classes for the C subset.

Every node carries ``line``/``col`` of the source token that opened it;
line numbers are the currency Algorithm 1 (path-sensitive gadget
generation) trades in, so they must be accurate.

Nodes expose ``children()`` which yields child nodes in source order,
enabling generic traversal (:func:`walk`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

__all__ = [
    "Node", "Expr", "Stmt",
    "Ident", "Number", "StringLit", "CharLit", "Unary", "Binary",
    "Assign", "Call", "Index", "Member", "Cast", "SizeOf", "Ternary",
    "Comma", "InitList",
    "Declarator", "Decl", "ExprStmt", "Block", "If", "While", "DoWhile",
    "For", "Switch", "Case", "Break", "Continue", "Return", "Goto",
    "Label", "Empty",
    "Param", "FunctionDef", "StructDef", "TranslationUnit",
    "walk",
]


@dataclass
class Node:
    """Base class for all AST nodes."""

    line: int
    col: int

    def children(self) -> Iterator["Node"]:
        """Yield child nodes in source order."""
        return iter(())


class Expr(Node):
    """Marker base class for expressions."""


class Stmt(Node):
    """Marker base class for statements."""


# --------------------------------------------------------------------------
# Expressions
# --------------------------------------------------------------------------


@dataclass
class Ident(Expr):
    name: str


@dataclass
class Number(Expr):
    text: str

    @property
    def value(self) -> float:
        text = self.text.rstrip("uUlLfF")
        if text.lower().startswith("0x"):
            return int(text, 16)
        if "." in text or "e" in text.lower():
            return float(text)
        return int(text)


@dataclass
class StringLit(Expr):
    text: str  # includes the surrounding quotes

    @property
    def value(self) -> str:
        body = self.text[1:-1] if len(self.text) >= 2 else ""
        return (
            body.replace("\\n", "\n")
            .replace("\\t", "\t")
            .replace("\\0", "\0")
            .replace('\\"', '"')
            .replace("\\\\", "\\")
        )


@dataclass
class CharLit(Expr):
    text: str  # includes the surrounding quotes

    @property
    def value(self) -> int:
        body = self.text[1:-1] if len(self.text) >= 2 else "\0"
        if body.startswith("\\"):
            escapes = {"n": "\n", "t": "\t", "0": "\0", "\\": "\\", "'": "'"}
            body = escapes.get(body[1:], body[1:] or "\0")
        return ord(body[0]) if body else 0


@dataclass
class Unary(Expr):
    op: str
    operand: Expr
    prefix: bool = True

    def children(self) -> Iterator[Node]:
        yield self.operand


@dataclass
class Binary(Expr):
    op: str
    left: Expr
    right: Expr

    def children(self) -> Iterator[Node]:
        yield self.left
        yield self.right


@dataclass
class Assign(Expr):
    op: str  # '=', '+=', ...
    target: Expr
    value: Expr

    def children(self) -> Iterator[Node]:
        yield self.target
        yield self.value


@dataclass
class Call(Expr):
    func: Expr
    args: list[Expr]

    def children(self) -> Iterator[Node]:
        yield self.func
        yield from self.args

    @property
    def callee_name(self) -> Optional[str]:
        """Function name when the callee is a plain identifier."""
        return self.func.name if isinstance(self.func, Ident) else None


@dataclass
class Index(Expr):
    base: Expr
    index: Expr

    def children(self) -> Iterator[Node]:
        yield self.base
        yield self.index


@dataclass
class Member(Expr):
    base: Expr
    name: str
    arrow: bool  # True for '->', False for '.'

    def children(self) -> Iterator[Node]:
        yield self.base


@dataclass
class Cast(Expr):
    type_name: str
    expr: Expr

    def children(self) -> Iterator[Node]:
        yield self.expr


@dataclass
class SizeOf(Expr):
    arg: Expr | str  # expression or type name

    def children(self) -> Iterator[Node]:
        if isinstance(self.arg, Node):
            yield self.arg


@dataclass
class Ternary(Expr):
    cond: Expr
    then: Expr
    otherwise: Expr

    def children(self) -> Iterator[Node]:
        yield self.cond
        yield self.then
        yield self.otherwise


@dataclass
class Comma(Expr):
    left: Expr
    right: Expr

    def children(self) -> Iterator[Node]:
        yield self.left
        yield self.right


@dataclass
class InitList(Expr):
    """Brace initializer, e.g. ``{1, 2, 3}``."""

    items: list[Expr]

    def children(self) -> Iterator[Node]:
        yield from self.items


# --------------------------------------------------------------------------
# Statements
# --------------------------------------------------------------------------


@dataclass
class Declarator:
    """One declared name inside a declaration statement."""

    name: str
    pointer_depth: int = 0
    array_sizes: list[Optional[Expr]] = field(default_factory=list)
    init: Optional[Expr] = None

    @property
    def is_array(self) -> bool:
        return bool(self.array_sizes)

    @property
    def is_pointer(self) -> bool:
        return self.pointer_depth > 0


@dataclass
class Decl(Stmt):
    type_name: str
    declarators: list[Declarator]

    def children(self) -> Iterator[Node]:
        for d in self.declarators:
            for size in d.array_sizes:
                if size is not None:
                    yield size
            if d.init is not None:
                yield d.init


@dataclass
class ExprStmt(Stmt):
    expr: Expr

    def children(self) -> Iterator[Node]:
        yield self.expr


@dataclass
class Block(Stmt):
    stmts: list[Stmt]
    end_line: int = 0  # line of the closing brace

    def children(self) -> Iterator[Node]:
        yield from self.stmts


@dataclass
class If(Stmt):
    cond: Expr
    then: Stmt
    otherwise: Optional[Stmt] = None
    is_elseif: bool = False  # parsed from an 'else if' chain
    else_line: int = 0       # line of the 'else' keyword, 0 if absent

    def children(self) -> Iterator[Node]:
        yield self.cond
        yield self.then
        if self.otherwise is not None:
            yield self.otherwise


@dataclass
class While(Stmt):
    cond: Expr
    body: Stmt

    def children(self) -> Iterator[Node]:
        yield self.cond
        yield self.body


@dataclass
class DoWhile(Stmt):
    body: Stmt
    cond: Expr
    while_line: int = 0

    def children(self) -> Iterator[Node]:
        yield self.body
        yield self.cond


@dataclass
class For(Stmt):
    init: Optional[Stmt]  # Decl or ExprStmt or None
    cond: Optional[Expr]
    step: Optional[Expr]
    body: Stmt

    def children(self) -> Iterator[Node]:
        if self.init is not None:
            yield self.init
        if self.cond is not None:
            yield self.cond
        if self.step is not None:
            yield self.step
        yield self.body


@dataclass
class Case(Stmt):
    """A ``case`` or ``default`` label with the statements it covers."""

    value: Optional[Expr]  # None for 'default'
    stmts: list[Stmt] = field(default_factory=list)

    def children(self) -> Iterator[Node]:
        if self.value is not None:
            yield self.value
        yield from self.stmts

    @property
    def is_default(self) -> bool:
        return self.value is None


@dataclass
class Switch(Stmt):
    expr: Expr
    cases: list[Case]
    end_line: int = 0

    def children(self) -> Iterator[Node]:
        yield self.expr
        yield from self.cases


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


@dataclass
class Return(Stmt):
    value: Optional[Expr] = None

    def children(self) -> Iterator[Node]:
        if self.value is not None:
            yield self.value


@dataclass
class Goto(Stmt):
    label: str


@dataclass
class Label(Stmt):
    name: str
    stmt: Stmt

    def children(self) -> Iterator[Node]:
        yield self.stmt


@dataclass
class Empty(Stmt):
    pass


# --------------------------------------------------------------------------
# Top level
# --------------------------------------------------------------------------


@dataclass
class Param:
    type_name: str
    name: str
    pointer_depth: int = 0
    is_array: bool = False
    line: int = 0


@dataclass
class FunctionDef(Node):
    return_type: str
    name: str
    params: list[Param]
    body: Block

    def children(self) -> Iterator[Node]:
        yield self.body


@dataclass
class StructDef(Node):
    name: str
    fields: list[tuple[str, str]]  # (type, name)


@dataclass
class TranslationUnit(Node):
    functions: list[FunctionDef]
    globals: list[Decl] = field(default_factory=list)
    structs: list[StructDef] = field(default_factory=list)

    def children(self) -> Iterator[Node]:
        yield from self.globals
        yield from self.functions

    def function(self, name: str) -> Optional[FunctionDef]:
        """Look up a function definition by name."""
        for fn in self.functions:
            if fn.name == name:
                return fn
        return None


def walk(node: Node) -> Iterator[Node]:
    """Depth-first pre-order traversal of ``node`` and its descendants."""
    stack = [node]
    while stack:
        current = stack.pop()
        yield current
        stack.extend(reversed(list(current.children())))
