"""SharedWeights lifecycle and reduced-precision archive round-trips.

The shared-memory block is the serving substrate for every
multi-process scorer (:mod:`repro.core.scorer_pool`): its lifecycle
must survive ill-behaved workers — in particular a worker that
attaches and then dies without ever detaching — without leaking the
block or breaking the owner's ``unlink``.
"""

import json
import subprocess
import sys

import numpy as np
import pytest

from repro.models.sevuldet import SEVulDetNet
from repro.nn.quantize import apply_inference_dtype
from repro.nn.serialize import (SharedWeights, bind_state, load_model,
                                save_model)


def arrays(seed=0):
    rng = np.random.default_rng(seed)
    return {
        "fc.weight": rng.normal(size=(5, 3)).astype(np.float32),
        "fc.bias": rng.normal(size=(3,)).astype(np.float32),
        "emb.weight": rng.normal(size=(11, 4)).astype(np.float16),
    }


class TestSharedWeightsLifecycle:
    def test_export_attach_round_trip(self):
        source = arrays()
        shared = SharedWeights.export(source)
        try:
            attached = SharedWeights.attach(shared.spec())
            try:
                views = attached.arrays()
                assert sorted(views) == sorted(source)
                for key, view in views.items():
                    assert view.dtype == source[key].dtype
                    assert np.array_equal(view, source[key])
                    assert not view.flags.writeable
            finally:
                attached.close()
        finally:
            shared.unlink()

    def test_owner_views_stay_writable(self):
        shared = SharedWeights.export(arrays())
        try:
            views = shared.arrays()
            assert all(v.flags.writeable for v in views.values())
        finally:
            shared.unlink()

    def test_unlink_is_idempotent_and_attach_close_is_safe(self):
        shared = SharedWeights.export(arrays())
        attached = SharedWeights.attach(shared.spec())
        attached.close()
        attached.close()  # double detach must not raise
        shared.unlink()
        shared.unlink()  # double unlink must not raise
        with pytest.raises(FileNotFoundError):
            SharedWeights.attach(shared.spec())

    def test_worker_death_mid_attach_leaves_owner_functional(self):
        """A worker that attaches and dies without detaching must not
        corrupt the block or break the owner's unlink."""
        shared = SharedWeights.export(arrays())
        try:
            spec = shared.spec()
            # the child attaches, reads one array, then dies hard —
            # no close(), no graceful interpreter shutdown
            script = (
                "import json, os, sys\n"
                "import numpy as np\n"
                "from repro.nn.serialize import SharedWeights\n"
                "spec = json.loads(sys.argv[1])\n"
                "shared = SharedWeights.attach(spec)\n"
                "views = shared.arrays()\n"
                "assert views['fc.bias'].shape == (3,)\n"
                "os._exit(7)\n"
            )
            payload = json.dumps({
                "name": spec["name"],
                "manifest": [
                    [key, dtype, list(shape), offset]
                    for key, dtype, shape, offset in spec["manifest"]
                ],
            })
            proc = subprocess.run(
                [sys.executable, "-c", script, payload],
                capture_output=True, text=True, timeout=60)
            assert proc.returncode == 7, proc.stderr
            # the owner's mapping is intact and unlink still works
            views = shared.arrays()
            assert np.array_equal(views["fc.bias"],
                                  arrays()["fc.bias"])
        finally:
            shared.unlink()

    def test_bind_state_points_at_views_zero_copy(self):
        net = SEVulDetNet(vocab_size=12, dim=6, channels=4, seed=2)
        shared = SharedWeights.export(net.state_dict())
        try:
            attached = SharedWeights.attach(shared.spec())
            try:
                clone = SEVulDetNet(vocab_size=12, dim=6, channels=4,
                                    seed=9)
                views = attached.arrays()
                bind_state(clone, views)
                own = {}
                clone._collect_params(own, prefix="")
                for key, param in own.items():
                    assert param.data is views[key]
            finally:
                attached.close()
        finally:
            shared.unlink()


class TestReducedPrecisionArchives:
    def test_float16_archive_round_trips_bitwise(self, tmp_path):
        net = SEVulDetNet(vocab_size=15, dim=6, channels=4, seed=4)
        net.eval()
        apply_inference_dtype(net, "float16")
        saved = {k: v.copy() for k, v in net.state_dict().items()}
        path = tmp_path / "f16.npz"
        save_model(net, path, metadata={"inference_dtype": "float16"})

        fresh = SEVulDetNet(vocab_size=15, dim=6, channels=4, seed=8)
        metadata = load_model(fresh, path)
        assert metadata["inference_dtype"] == "float16"
        # load_state_dict lands in the session default (float32);
        # re-applying the dtype recovers the exact half-precision
        # bytes because f16 -> f32 -> f16 is lossless
        apply_inference_dtype(fresh, "float16")
        for key, value in fresh.state_dict().items():
            assert value.dtype == saved[key].dtype, key
            assert np.array_equal(value, saved[key]), key

    def test_float16_archive_stores_half_precision_bytes(self, tmp_path):
        net = SEVulDetNet(vocab_size=15, dim=6, channels=4, seed=4)
        apply_inference_dtype(net, "float16")
        path = tmp_path / "f16.npz"
        save_model(net, path)
        with np.load(path) as archive:
            dtypes = {archive[key].dtype for key in archive.files
                      if key != "__metadata__"
                      and archive[key].ndim >= 2}
        assert dtypes == {np.dtype(np.float16)}
