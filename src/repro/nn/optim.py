"""Optimizers: SGD (with momentum) and Adam.

The paper trains with the hyper-parameters of Table IV (Adam-style
training, learning rate 1e-4 for SEVulDet); both optimizers support
gradient clipping, which keeps the small-corpus numpy training stable.
"""

from __future__ import annotations

import numpy as np

from .layers import Parameter

__all__ = ["Optimizer", "SGD", "Adam", "clip_grad_norm"]


def clip_grad_norm(params: list[Parameter], max_norm: float) -> float:
    """Scale gradients so their global L2 norm is at most ``max_norm``."""
    total = 0.0
    for param in params:
        if param.grad is not None:
            total += float((param.grad ** 2).sum())
    norm = float(np.sqrt(total))
    if norm > max_norm and norm > 0:
        scale = max_norm / norm
        for param in params:
            if param.grad is not None:
                param.grad *= scale
    return norm


class Optimizer:
    """Base optimizer over a fixed parameter list."""

    def __init__(self, params, lr: float):
        self.params: list[Parameter] = list(params)
        if not self.params:
            raise ValueError("optimizer received no parameters")
        self.lr = lr

    def zero_grad(self) -> None:
        for param in self.params:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, params, lr: float = 0.01, momentum: float = 0.0,
                 weight_decay: float = 0.0):
        super().__init__(params, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for index, param in enumerate(self.params):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                self._velocity[index] = (self.momentum
                                         * self._velocity[index] - self.lr
                                         * grad)
                param.data += self._velocity[index]
            else:
                param.data -= self.lr * grad


class Adam(Optimizer):
    """Adam (Kingma & Ba 2015) with bias correction."""

    def __init__(self, params, lr: float = 1e-3, betas=(0.9, 0.999),
                 eps: float = 1e-8, weight_decay: float = 0.0):
        super().__init__(params, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        correction1 = 1.0 - self.beta1 ** self._t
        correction2 = 1.0 - self.beta2 ** self._t
        for index, param in enumerate(self.params):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            self._m[index] = (self.beta1 * self._m[index]
                              + (1 - self.beta1) * grad)
            self._v[index] = (self.beta2 * self._v[index]
                              + (1 - self.beta2) * grad ** 2)
            m_hat = self._m[index] / correction1
            v_hat = self._v[index] / correction2
            param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
