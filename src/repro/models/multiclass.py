"""Multiclass CWE-type classification head (paper Fig 2(b)).

The detection phase "outputs vulnerability type and line number (if
exists)"; binary scoring gives the line, and this model supplies the
type: the same flexible-length CNN/attention/SPP trunk with a k-way
softmax head over CWE families, trained on vulnerable gadgets only
(the mu-VulDeePecker formulation of multiclass gadget typing).
"""

from __future__ import annotations

import numpy as np

from ..nn import (CBAM, Conv1d, Dropout, Embedding, Linear, Module,
                  SpatialPyramidPooling1d, Tensor, TokenAttention)

__all__ = ["CWETypeNet"]


class CWETypeNet(Module):
    """Flexible-length k-way gadget classifier.

    Args:
        vocab_size: embedding rows.
        num_classes: CWE families to distinguish.
        dim / channels / kernel / dropout: as in SEVulDetNet.
    """

    fixed_length: int | None = None

    def __init__(self, vocab_size: int, num_classes: int, dim: int = 30,
                 channels: int = 32, kernel: int = 3,
                 dropout: float = 0.2,
                 pretrained: np.ndarray | None = None, seed: int = 7):
        super().__init__()
        if num_classes < 2:
            raise ValueError("need at least two classes")
        rng = np.random.default_rng(seed)
        self.num_classes = num_classes
        self.embedding = Embedding(vocab_size, dim, rng,
                                   weights=pretrained)
        self.token_attention = TokenAttention(dim, rng)
        self.conv = Conv1d(dim, channels, kernel, rng,
                           padding=kernel // 2)
        self.cbam = CBAM(channels, rng)
        self.spp = SpatialPyramidPooling1d()
        self.fc1 = Linear(self.spp.output_features(channels), 128, rng)
        self.fc2 = Linear(128, num_classes, rng)
        self.dropout = Dropout(dropout, rng)

    def forward(self, token_ids: np.ndarray) -> Tensor:
        """(batch, length) ids -> (batch, num_classes) logits."""
        embedded = self.token_attention(self.embedding(token_ids))
        features = self.conv(embedded.transpose(0, 2, 1)).relu()
        features = self.cbam(features)
        pooled = self.spp(features)
        hidden = self.dropout(self.fc1(pooled).relu())
        return self.fc2(hidden)

    def predict(self, token_ids: np.ndarray) -> np.ndarray:
        """Most likely class index per sample."""
        return self.forward(token_ids).data.argmax(axis=1)

    def predict_proba(self, token_ids: np.ndarray) -> np.ndarray:
        logits = self.forward(token_ids).data
        shifted = logits - logits.max(axis=1, keepdims=True)
        exp = np.exp(shifted)
        return exp / exp.sum(axis=1, keepdims=True)
