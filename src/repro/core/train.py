"""Classifier training (paper Step V's learning loop).

The generic train loop both the SEVulDet model and the BRNN baselines
share: class-rebalanced sampling, fixed- or bucketed-length batching,
early stopping, and atomic resumable checkpoints.
"""

from __future__ import annotations

import hashlib
import logging
from pathlib import Path
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..nn import (Adam, Module, Sample, bce_with_logits,
                  bucketed_batches, clip_grad_norm,
                  fixed_length_batches)
from ..testing import faults
from .resilience import TrainingCheckpoint
from .score import SCORE_MIN_LENGTH, evaluate_classifier
from .telemetry import Telemetry

__all__ = ["TrainReport", "train_classifier"]

logger = logging.getLogger(__name__)


@dataclass
class TrainReport:
    """Loss trajectory of one training run."""

    losses: list[float] = field(default_factory=list)
    val_f1: list[float] = field(default_factory=list)
    stopped_early: bool = False
    best_epoch: int = -1

    @property
    def final_loss(self) -> float:
        return self.losses[-1] if self.losses else float("nan")


def _train_config_token(params, *, batch_size: int, lr: float,
                        seed: int, n_samples: int, fixed,
                        class_balance: bool) -> str:
    """Fingerprint of everything a resumed run must share with the
    run that wrote the checkpoint (total ``epochs`` is deliberately
    free so a finished run can be extended)."""
    shapes = ",".join(str(tuple(p.data.shape)) for p in params)
    digest = hashlib.sha256(shapes.encode()).hexdigest()[:12]
    return (f"batch={batch_size};lr={lr:g};seed={seed};"
            f"samples={n_samples};fixed={fixed};"
            f"balance={int(class_balance)};params={digest}")


def _param_names(model: Module, params) -> list[str] | None:
    """Dotted parameter names in optimizer order, or None when the
    model cannot name every optimizer parameter (e.g. the optimizer
    was built over a superset)."""
    named = getattr(model, "named_parameters", None)
    if named is None:
        return None
    by_id = {id(param): name for name, param in named()}
    names = []
    for param in params:
        name = by_id.get(id(param))
        if name is None:
            return None
        names.append(name)
    return names


def train_classifier(model: Module, samples: Sequence[Sample], *,
                     epochs: int = 8, batch_size: int = 16,
                     lr: float = 3e-3, seed: int = 0,
                     grad_clip: float = 5.0,
                     class_balance: bool = True,
                     validation: Sequence[Sample] | None = None,
                     patience: int | None = None,
                     telemetry: Telemetry | None = None,
                     checkpoint_dir: str | Path | None = None,
                     checkpoint_every: int = 1,
                     resume: bool = False) -> TrainReport:
    """Train any gadget classifier (fixed- or flexible-length).

    Models advertising ``fixed_length`` get padded/truncated batches
    (Definition 8); flexible models get length-bucketed batches with no
    padding.  With ``class_balance`` the minority class is oversampled
    to a 1:2 ratio, compensating for the gadget-level imbalance the
    paper reports (and chooses not to rebalance at the *data* level —
    we rebalance only the sampling, keeping the data unbalanced).

    With a ``validation`` set and ``patience``, training stops when
    validation F1 has not improved for ``patience`` consecutive epochs
    and the best-epoch weights are restored (early stopping).

    With a ``checkpoint_dir``, an atomic checkpoint (weights, Adam
    moments, RNG state, loss/early-stopping trajectory) is written
    every ``checkpoint_every`` completed epochs; ``resume=True`` picks
    training back up from the last checkpoint and — because the RNG
    and optimizer state are restored exactly — finishes with the same
    weights an uninterrupted run would have produced.  Resuming under
    different hyper-parameters raises ``ValueError`` instead of
    silently diverging.

    ``telemetry`` accumulates the ``train`` / ``train-epoch`` stage
    timings, ``train_batches`` / ``train_samples`` counters, and
    ``checkpoint_writes`` / ``checkpoint_resumes`` recovery counters.
    """
    import time

    rng = np.random.default_rng(seed)
    fixed = getattr(model, "fixed_length", None)
    train_samples = list(samples)
    if class_balance:
        train_samples = _oversample(train_samples, rng)
    params = list(model.parameters())
    optimizer = Adam(params, lr=lr)
    report = TrainReport()
    best_f1 = -1.0
    best_state: dict[str, np.ndarray] | None = None
    stale = 0
    start_epoch = 0

    checkpoint = (TrainingCheckpoint(checkpoint_dir)
                  if checkpoint_dir is not None else None)
    token = _train_config_token(
        params, batch_size=batch_size, lr=lr, seed=seed,
        n_samples=len(samples), fixed=fixed,
        class_balance=class_balance)
    if checkpoint is not None and resume:
        state = checkpoint.load(config_token=token)
        if state is not None:
            model.load_state_dict(state.model_state)
            optimizer.load_state_dict(state.optim_state)
            rng.bit_generator.state = state.rng_state
            if state.model_rng_states and hasattr(model,
                                                  "load_rng_states"):
                model.load_rng_states(state.model_rng_states)
            report.losses = list(state.losses)
            report.val_f1 = list(state.val_f1)
            report.best_epoch = state.best_epoch
            best_f1 = state.best_f1
            best_state = state.best_state
            stale = state.stale
            start_epoch = state.next_epoch
            if telemetry is not None:
                telemetry.count("checkpoint_resumes")
            logger.info("train_classifier: resumed from %s at epoch "
                        "%d", checkpoint.path, start_epoch)

    model.train()
    train_start = time.perf_counter()
    for epoch in range(start_epoch, epochs):
        epoch_start = time.perf_counter()
        epoch_losses: list[float] = []
        epoch_samples = 0
        if fixed is not None:
            batches = fixed_length_batches(train_samples, fixed,
                                           batch_size, rng)
        else:
            batches = bucketed_batches(train_samples, batch_size, rng,
                                       min_length=SCORE_MIN_LENGTH)
        for batch_index, (ids, labels) in enumerate(batches):
            faults.fire("train-batch", f"{epoch}.{batch_index}")
            optimizer.zero_grad()
            logits = model(ids)
            loss = bce_with_logits(logits, labels)
            loss.backward()
            clip_grad_norm(params, grad_clip)
            optimizer.step()
            epoch_losses.append(float(loss.data))
            epoch_samples += len(labels)
        report.losses.append(float(np.mean(epoch_losses))
                             if epoch_losses else float("nan"))
        if telemetry is not None:
            telemetry.add_stage("train-epoch",
                                time.perf_counter() - epoch_start)
            telemetry.count("train_batches", len(epoch_losses))
            telemetry.count("train_samples", epoch_samples)
        should_stop = False
        if validation is not None:
            metrics = evaluate_classifier(model, validation)
            model.train()
            report.val_f1.append(metrics.f1)
            if metrics.f1 > best_f1:
                best_f1 = metrics.f1
                best_state = {key: value.copy() for key, value
                              in model.state_dict().items()}
                report.best_epoch = len(report.losses) - 1
                stale = 0
            else:
                stale += 1
                if patience is not None and stale >= patience:
                    should_stop = True
        if checkpoint is not None and (
                (epoch + 1) % checkpoint_every == 0
                or should_stop or epoch == epochs - 1):
            checkpoint.save(
                epoch=epoch, model=model, optimizer=optimizer,
                rng=rng, losses=report.losses, val_f1=report.val_f1,
                best_epoch=report.best_epoch, best_f1=best_f1,
                stale=stale, best_state=best_state,
                config_token=token,
                param_names=_param_names(model, params))
            if telemetry is not None:
                telemetry.count("checkpoint_writes")
        if should_stop:
            report.stopped_early = True
            break
    if telemetry is not None:
        telemetry.add_stage("train",
                            time.perf_counter() - train_start)
    if best_state is not None:
        model.load_state_dict(best_state)
    model.eval()
    return report


def _oversample(samples: list[Sample],
                rng: np.random.Generator) -> list[Sample]:
    positives = [s for s in samples if s.label == 1]
    negatives = [s for s in samples if s.label == 0]
    if not positives or not negatives:
        return samples
    minority, majority = ((positives, negatives)
                          if len(positives) < len(negatives)
                          else (negatives, positives))
    target = max(len(majority) // 2, len(minority))
    extra = target - len(minority)
    if extra <= 0:
        return samples
    picks = rng.integers(0, len(minority), size=extra)
    return samples + [minority[int(i)] for i in picks]
