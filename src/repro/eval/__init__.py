"""Metrics, cross-validation, and framework comparison drivers."""

from .metrics import Confusion, Metrics, confusion_from, metrics_from
from .crossval import kfold_indices, kfold_split, stratified_kfold_indices
from .report import Table, atomic_write_text
from .significance import BootstrapComparison, paired_bootstrap
from .thresholds import (OperatingPoint, best_f1_threshold,
                         precision_recall_points, roc_auc, roc_points,
                         sweep_thresholds, threshold_for_fpr)

__all__ = [
    "Confusion", "Metrics", "confusion_from", "metrics_from",
    "kfold_indices", "kfold_split", "stratified_kfold_indices",
    "Table",
    "BootstrapComparison", "paired_bootstrap",
    "OperatingPoint", "best_f1_threshold", "precision_recall_points",
    "roc_auc", "roc_points", "sweep_thresholds", "threshold_for_fpr",
    "atomic_write_text",
    "FRAMEWORKS", "FrameworkSpec", "evaluate_static_tool",
    "train_and_evaluate",
    "CrossValidationReport", "FoldResult", "cross_validate",
    "Detector", "Prediction", "FrameworkDetector", "StaticToolDetector",
    "FuzzDetector", "build_detector", "default_detectors",
    "MatrixCell", "MatrixResult", "MatrixRunner", "run_matrix",
]

_COMPARISON_NAMES = {"FRAMEWORKS", "FrameworkSpec",
                     "evaluate_static_tool", "train_and_evaluate"}
_PROTOCOL_NAMES = {"CrossValidationReport", "FoldResult",
                   "cross_validate"}
_DETECTOR_NAMES = {"Detector", "Prediction", "FrameworkDetector",
                   "StaticToolDetector", "FuzzDetector",
                   "build_detector", "default_detectors"}
_MATRIX_NAMES = {"MatrixCell", "MatrixResult", "MatrixRunner",
                 "run_matrix"}


def __getattr__(name: str):
    # comparison imports core.pipeline, which imports eval.metrics;
    # loading it (and everything built on it) lazily keeps the package
    # import acyclic.
    if name in _COMPARISON_NAMES:
        from . import comparison

        return getattr(comparison, name)
    if name in _PROTOCOL_NAMES:
        from . import protocol

        return getattr(protocol, name)
    if name in _DETECTOR_NAMES:
        from . import detector

        return getattr(detector, name)
    if name in _MATRIX_NAMES:
        from . import matrix

        return getattr(matrix, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
