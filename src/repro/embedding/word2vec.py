"""Skip-gram word2vec with negative sampling (paper Step IV, Eq. 1).

SEVulDet embeds normalized gadget tokens with a pre-trained word2vec
model; this is the numpy reimplementation of gensim's skip-gram
negative-sampling trainer, scaled for token-level code vocabularies
(a few thousand symbols).

Two training backends share one objective:

``batched`` (default)
    The hot path.  All (center, context, negatives) pairs of a
    sequence are generated up front with vectorized window sampling,
    then SGNS updates are applied in minibatches of pairs: one
    ``(B, 1+neg, dim)`` gather, two einsums, and two ``np.add.at``
    scatter-accumulates per batch.  Updates within a minibatch read
    the weights as of the batch start (a standard minibatch
    approximation of the sequential update), so results are
    *statistically* equivalent to the per-pair path — same loss
    trajectory and neighborhood structure, not bit-identical.

``pairwise``
    The original per-(center, context) Python loop, kept as the
    reference implementation for equivalence tests and benchmarks.

Select with ``Word2Vec(backend=...)`` or ``REPRO_W2V_BACKEND`` in the
environment.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..nn.dtype import get_default_dtype
from .vocab import Vocabulary

__all__ = ["Word2Vec"]

#: pairs per scatter-update minibatch of the batched backend; large
#: enough to amortize numpy dispatch, small enough that the frozen
#: within-batch weights track the sequential trajectory closely.
BATCH_PAIRS = 1024

#: pairs buffered across sequences before a flush of minibatch
#: updates; short gadgets yield few pairs each, so flushing per
#: sequence would leave the per-call numpy overhead dominant.
CHUNK_PAIRS = 8192


@dataclass
class _Config:
    dim: int = 30
    window: int = 4
    negatives: int = 5
    lr: float = 0.025
    min_lr: float = 1e-4
    epochs: int = 3
    seed: int = 13


class Word2Vec:
    """Skip-gram with negative sampling over token-id corpora.

    Args:
        vocab: vocabulary the corpus is encoded against.
        dim: embedding dimensionality (the paper uses 30).
        window: max context distance.
        negatives: negative samples per positive pair.
        backend: 'batched' (vectorized, default) or 'pairwise' (the
            reference per-pair loop); defaults to $REPRO_W2V_BACKEND.
    """

    def __init__(self, vocab: Vocabulary, dim: int = 30, window: int = 4,
                 negatives: int = 5, seed: int = 13,
                 backend: str | None = None):
        if backend is None:
            backend = os.environ.get("REPRO_W2V_BACKEND", "batched")
        if backend not in ("batched", "pairwise"):
            raise ValueError(f"unknown word2vec backend {backend!r}; "
                             f"choose 'batched' or 'pairwise'")
        self.vocab = vocab
        self.backend = backend
        self.config = _Config(dim=dim, window=window, negatives=negatives,
                              seed=seed)
        rng = np.random.default_rng(seed)
        scale = 0.5 / dim
        dtype = get_default_dtype()
        self.input_vectors = rng.uniform(
            -scale, scale, size=(len(vocab), dim)).astype(dtype)
        self.output_vectors = np.zeros((len(vocab), dim), dtype=dtype)
        self._noise_table: np.ndarray | None = None

    # -- training -----------------------------------------------------------

    def _build_noise_table(self, corpora: Sequence[Sequence[int]],
                           table_size: int = 1 << 16) -> None:
        counts = np.ones(len(self.vocab))
        for corpus in corpora:
            for token_id in corpus:
                counts[token_id] += 1
        probabilities = counts ** 0.75
        probabilities /= probabilities.sum()
        rng = np.random.default_rng(self.config.seed + 1)
        self._noise_table = rng.choice(len(self.vocab), size=table_size,
                                       p=probabilities)

    def train(self, corpora: Sequence[Sequence[int]],
              epochs: int | None = None, min_count: int = 1,
              telemetry=None) -> float:
        """Train on encoded token sequences; returns final mean loss.

        ``min_count`` reproduces gensim's rare-token trimming at the
        *training* level: token ids seen fewer than ``min_count`` times
        across the corpora train as UNK, and after training their
        embedding rows are tied to the UNK row.  The vocabulary itself
        is untouched, so id<->token roundtrips stay exact while every
        rare constant still shares one generalized embedding.

        ``telemetry`` (an optional :class:`repro.core.telemetry.\
Telemetry`-like accumulator) receives the ``w2v-train`` /
        ``w2v-epoch`` stage timings and ``w2v_tokens`` / ``w2v_pairs``
        counters the throughput numbers are derived from.
        """
        import time

        config = self.config
        epochs = epochs if epochs is not None else config.epochs
        rare_ids = self._rare_ids(corpora, min_count)
        if rare_ids:
            corpora = [[1 if token_id in rare_ids else token_id
                        for token_id in corpus] for corpus in corpora]
        self._build_noise_table(corpora)
        assert self._noise_table is not None
        rng = np.random.default_rng(config.seed + 2)
        total_pairs = max(
            sum(len(corpus) for corpus in corpora) * epochs, 1)
        seen = 0
        last_loss = 0.0
        start = time.perf_counter()
        for _ in range(epochs):
            epoch_start = time.perf_counter()
            epoch_tokens = sum(len(corpus) for corpus in corpora)
            if self.backend == "batched":
                last_loss, epoch_pairs, seen = self._train_epoch_batched(
                    corpora, rng, seen, total_pairs)
            else:
                epoch_pairs = 0
                for corpus in corpora:
                    last_loss, pairs = self._train_sequence(
                        corpus, rng, seen, total_pairs)
                    seen += len(corpus)
                    epoch_pairs += pairs
            if telemetry is not None:
                telemetry.add_stage(
                    "w2v-epoch", time.perf_counter() - epoch_start)
                telemetry.count("w2v_pairs", epoch_pairs)
                telemetry.count("w2v_tokens", epoch_tokens)
        if telemetry is not None:
            telemetry.add_stage("w2v-train",
                                time.perf_counter() - start)
        if rare_ids:
            rows = sorted(rare_ids)
            self.input_vectors[rows] = self.input_vectors[1]
            self.output_vectors[rows] = self.output_vectors[1]
        return last_loss

    def _rare_ids(self, corpora: Sequence[Sequence[int]],
                  min_count: int) -> set[int]:
        """Real-token ids (>= 2) occurring fewer than min_count times."""
        if min_count <= 1:
            return set()
        counts: dict[int, int] = {}
        for corpus in corpora:
            for token_id in corpus:
                counts[token_id] = counts.get(token_id, 0) + 1
        return {token_id for token_id, count in counts.items()
                if token_id >= 2 and count < min_count}

    # -- batched backend ----------------------------------------------------

    def _sample_pairs(self, corpus: Sequence[int],
                      rng: np.random.Generator
                      ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Vectorized window sampling over one sequence.

        Returns ``(center_pos, centers, targets)`` where ``targets``
        stacks the positive context with the negative samples as a
        ``(P, 1 + negatives)`` id matrix.  For each position a span is
        drawn uniformly from ``[1, window]`` (gensim's window
        shrinking) and every in-window neighbor becomes one pair.
        """
        config = self.config
        noise = self._noise_table
        assert noise is not None
        ids = np.asarray(corpus, dtype=np.int64)
        n = len(ids)
        positions = np.arange(n)
        spans = rng.integers(1, config.window + 1, size=n)
        lo = np.maximum(positions - spans, 0)
        hi = np.minimum(positions + spans + 1, n)
        counts = hi - lo - 1  # neighbors in window, minus self
        total = int(counts.sum())
        if total == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty, empty.reshape(0, 1 + config.negatives)
        center_pos = np.repeat(positions, counts)
        starts = np.concatenate(([0], np.cumsum(counts)[:-1]))
        ranks = np.arange(total) - np.repeat(starts, counts)
        context_pos = np.repeat(lo, counts) + ranks
        context_pos += (context_pos >= center_pos)  # skip the center
        negatives = noise[rng.integers(0, len(noise),
                                       size=(total, config.negatives))]
        targets = np.concatenate(
            (ids[context_pos][:, None], negatives), axis=1)
        return center_pos, ids[center_pos], targets

    def _train_epoch_batched(self, corpora: Sequence[Sequence[int]],
                             rng: np.random.Generator, seen: int,
                             total: int) -> tuple[float, int, int]:
        """One epoch of minibatched SGNS over all sequences.

        Pairs are sampled per sequence (keeping window semantics and
        the per-token lr decay anchored to each token's global corpus
        position) but buffered across sequences and flushed in
        ``CHUNK_PAIRS`` chunks, so short gadgets still amortize the
        numpy dispatch cost.  Returns ``(last_flush_mean_loss,
        epoch_pairs, seen)``.
        """
        pending: list[tuple[np.ndarray, np.ndarray, np.ndarray]] = []
        pending_pairs = 0
        epoch_pairs = 0
        last_loss = 0.0

        def flush() -> None:
            nonlocal pending, pending_pairs, epoch_pairs, last_loss
            if not pending_pairs:
                return
            global_pos = np.concatenate([p for p, _, _ in pending])
            centers = np.concatenate([c for _, c, _ in pending])
            targets = np.concatenate([t for _, _, t in pending])
            last_loss = self._apply_updates(global_pos, centers,
                                            targets, total)
            epoch_pairs += pending_pairs
            pending = []
            pending_pairs = 0

        for corpus in corpora:
            center_pos, centers, targets = self._sample_pairs(corpus,
                                                              rng)
            if len(centers):
                pending.append((center_pos + seen, centers, targets))
                pending_pairs += len(centers)
            seen += len(corpus)
            if pending_pairs >= CHUNK_PAIRS:
                flush()
        flush()
        return last_loss, epoch_pairs, seen

    def _apply_updates(self, global_pos: np.ndarray,
                       centers: np.ndarray, targets: np.ndarray,
                       total: int) -> float:
        """Minibatched SGNS updates over a flat pair chunk.

        Per minibatch: gather ``(B, dim)`` center rows and
        ``(B, 1+neg, dim)`` target rows, score with one einsum, and
        scatter the lr-scaled gradients back with ``np.add.at`` (which
        accumulates duplicate ids correctly — the same token can occur
        many times in a batch).  Returns the chunk's mean loss.

        The minibatch size adapts to the vocabulary: updates within a
        batch read frozen weights, so a batch must not hit any one
        embedding row too many times or the summed step overshoots
        (tiny vocabularies are the worst case — every pair touches the
        same handful of rows).  Capping pairs per batch at about four
        row-touches per vocabulary entry keeps the summed update the
        same magnitude as a short sequential run.
        """
        config = self.config
        batch_pairs = max(32, min(
            BATCH_PAIRS,
            (4 * len(self.vocab)) // (1 + config.negatives)))
        total_pairs = len(centers)
        progress = np.minimum(global_pos / total, 1.0)
        dtype = self.input_vectors.dtype
        lrs = np.maximum(config.lr * (1.0 - progress),
                         config.min_lr).astype(dtype)
        dim = self.input_vectors.shape[1]
        labels = np.zeros((1, 1 + config.negatives), dtype=dtype)
        labels[0, 0] = 1.0
        eps = 1e-10
        loss_sum = 0.0
        for start in range(0, total_pairs, batch_pairs):
            batch = slice(start, start + batch_pairs)
            c = centers[batch]
            t = targets[batch]                       # (B, 1+neg)
            lr = lrs[batch]
            v = self.input_vectors[c]                # (B, dim)
            outputs = self.output_vectors[t]         # (B, 1+neg, dim)
            scores = np.einsum("bkd,bd->bk", outputs, v, optimize=True)
            sigmoid = 1.0 / (1.0 + np.exp(-np.clip(scores, -10, 10)))
            gradient = (sigmoid - labels) * lr[:, None]  # (B, 1+neg)
            grad_v = np.einsum("bk,bkd->bd", gradient, outputs,
                               optimize=True)
            grad_out = gradient[:, :, None] * v[:, None, :]
            np.add.at(self.output_vectors, t.reshape(-1),
                      -grad_out.reshape(-1, dim))
            np.add.at(self.input_vectors, c, -grad_v)
            loss_sum += float(
                -(np.log(sigmoid[:, 0] + eps)
                  + np.log(1.0 - sigmoid[:, 1:] + eps).sum(axis=1)
                  ).sum())
        return loss_sum / total_pairs

    # -- pairwise backend (reference) ---------------------------------------

    def _train_sequence(self, corpus: Sequence[int],
                        rng: np.random.Generator, seen: int,
                        total: int) -> tuple[float, int]:
        config = self.config
        noise = self._noise_table
        losses: list[float] = []
        for position, center in enumerate(corpus):
            progress = min((seen + position) / total, 1.0)
            lr = max(config.lr * (1.0 - progress), config.min_lr)
            span = int(rng.integers(1, config.window + 1))
            start = max(position - span, 0)
            for context_pos in range(start,
                                     min(position + span + 1, len(corpus))):
                if context_pos == position:
                    continue
                context = corpus[context_pos]
                negatives = noise[rng.integers(0, len(noise),
                                               size=config.negatives)]
                losses.append(
                    self._sgns_update(center, context, negatives, lr))
        mean = float(np.mean(losses)) if losses else 0.0
        return mean, len(losses)

    def _sgns_update(self, center: int, context: int,
                     negatives: np.ndarray, lr: float) -> float:
        v = self.input_vectors[center]
        targets = np.concatenate(([context], negatives))
        labels = np.zeros(len(targets))
        labels[0] = 1.0
        outputs = self.output_vectors[targets]          # (1+neg, dim)
        scores = outputs @ v
        sigmoid = 1.0 / (1.0 + np.exp(-np.clip(scores, -10, 10)))
        gradient = (sigmoid - labels)                   # (1+neg,)
        grad_v = gradient @ outputs
        # np.add.at, not fancy-index -=: negatives can repeat (and can
        # equal the context), and each occurrence is a separate loss
        # term whose gradient must accumulate — buffered assignment
        # would silently drop all but one update per duplicated id,
        # systematically under-training the frequent tokens that
        # dominate the noise table.  The batched backend's scatter has
        # the same accumulate semantics.
        np.add.at(self.output_vectors, targets,
                  (-lr * np.outer(gradient, v)).astype(outputs.dtype))
        self.input_vectors[center] -= (lr * grad_v
                                       ).astype(v.dtype)
        eps = 1e-10
        loss = -(np.log(sigmoid[0] + eps)
                 + np.log(1.0 - sigmoid[1:] + eps).sum())
        return float(loss)

    # -- queries ------------------------------------------------------------

    @property
    def vectors(self) -> np.ndarray:
        """The (vocab, dim) input embedding matrix (row 0 = PAD)."""
        return self.input_vectors

    def vector(self, token: str) -> np.ndarray:
        token_id = self.vocab.token_to_id.get(token, 1)
        return self.input_vectors[token_id]

    def similarity(self, a: str, b: str) -> float:
        """Cosine similarity between two tokens' vectors."""
        va, vb = self.vector(a), self.vector(b)
        denom = (np.linalg.norm(va) * np.linalg.norm(vb)) + 1e-12
        return float(va @ vb / denom)

    def most_similar(self, token: str, top_k: int = 5
                     ) -> list[tuple[str, float]]:
        """Nearest tokens by cosine similarity (excludes PAD/UNK/self)."""
        target = self.vector(token)
        norms = np.linalg.norm(self.input_vectors, axis=1) + 1e-12
        scores = self.input_vectors @ target \
            / (norms * (np.linalg.norm(target) + 1e-12))
        order = np.argsort(-scores)
        results: list[tuple[str, float]] = []
        for token_id in order:
            word = self.vocab.id_to_token[token_id]
            if token_id < 2 or word == token:
                continue
            results.append((word, float(scores[token_id])))
            if len(results) >= top_k:
                break
        return results
