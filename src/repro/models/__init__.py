"""Detection models: SEVulDet and the BRNN/CNN baselines."""

from .sevuldet import DECISION_THRESHOLD, SEVulDetNet
from .blstm import BLSTMNet
from .bgru import BGRUNet
from .cnn_variants import ABLATION_BUILDERS, cnn_multi_att, cnn_token_att, plain_cnn
from .multiclass import CWETypeNet

__all__ = ["DECISION_THRESHOLD", "SEVulDetNet", "BLSTMNet", "BGRUNet",
           "ABLATION_BUILDERS", "cnn_multi_att", "cnn_token_att", "plain_cnn",
           "CWETypeNet"]
