"""Tests for dominator analysis and control dependence, including a
brute-force cross-check of the post-dominator computation."""

import networkx as nx

from repro.lang.cfg import NodeKind, build_cfg
from repro.lang.dominance import (control_dependences, dominator_tree,
                                  post_dominator_tree)
from repro.lang.parser import parse


def cfg_of(body: str):
    unit = parse(f"void f(int n) {{\n{body}\n}}")
    return build_cfg(unit.functions[0])


def cd_pairs(cfg):
    """(controller line, dependent line, label) triples."""
    return {(a.line, b.line, label)
            for a, b, label in control_dependences(cfg)}


class TestDominators:
    def test_entry_dominates_everything(self):
        cfg = cfg_of("if (n) { n = 1; }\nreturn;")
        idom = dominator_tree(cfg)
        for node_id in idom:
            runner = node_id
            while runner != cfg.entry.id:
                runner = idom[runner]
            assert runner == cfg.entry.id

    def test_exit_postdominates_everything_reachable(self):
        cfg = cfg_of("if (n) { n = 1; } else { n = 2; }")
        ipdom = post_dominator_tree(cfg)
        for node_id in cfg.nodes:
            runner = node_id
            seen = set()
            while runner != cfg.exit.id and runner not in seen:
                seen.add(runner)
                runner = ipdom[runner]
            assert runner == cfg.exit.id

    def test_brute_force_postdominators(self):
        """ipdom via networkx must agree with the set-based definition:
        p post-dominates n iff p is on every n->exit path."""
        cfg = cfg_of("if (n) { n = 1; }\nwhile (n) { n--; }\nreturn;")
        graph = nx.DiGraph()
        graph.add_nodes_from(cfg.nodes)
        for edge in cfg.edges:
            graph.add_edge(edge.src, edge.dst)
        ipdom = post_dominator_tree(cfg)

        def postdominates(p, n):
            if p == n or p == cfg.exit.id:
                return True  # exit post-dominates every node
            pruned = graph.copy()
            pruned.remove_node(p)
            if not pruned.has_node(n):
                return True
            return not nx.has_path(pruned, n, cfg.exit.id)

        for node_id, parent in ipdom.items():
            if node_id == cfg.exit.id:
                continue
            assert postdominates(parent, node_id), (node_id, parent)


class TestControlDependence:
    def test_then_branch_depends_on_if(self):
        cfg = cfg_of("if (n) {\nn = 1;\n}\nreturn;")
        assert (2, 3, "true") in cd_pairs(cfg)

    def test_else_branch_negative_dependence(self):
        cfg = cfg_of("if (n) {\nn = 1;\n} else {\nn = 2;\n}")
        pairs = cd_pairs(cfg)
        assert (2, 3, "true") in pairs
        assert (2, 5, "false") in pairs

    def test_statement_after_join_not_dependent(self):
        cfg = cfg_of("if (n) {\nn = 1;\n}\nint x = 2;")
        pairs = cd_pairs(cfg)
        assert not any(dep == 5 for _, dep, _ in pairs)

    def test_loop_body_depends_on_condition(self):
        cfg = cfg_of("while (n) {\nn--;\n}")
        assert (2, 3, "true") in cd_pairs(cfg)

    def test_while_condition_self_dependence(self):
        # A loop condition controls its own re-execution.
        cfg = cfg_of("while (n) {\nn--;\n}")
        # (cond controls body; body->cond edge makes cond depend on
        # itself in FOW formulation — we exclude self loops.)
        assert all(a != b for a, b, _ in cd_pairs(cfg))

    def test_nested_if_transitive_structure(self):
        cfg = cfg_of("if (n) {\nif (n > 1) {\nn = 2;\n}\n}")
        pairs = cd_pairs(cfg)
        assert (2, 3, "true") in pairs   # outer controls inner cond
        assert (3, 4, "true") in pairs   # inner controls assignment

    def test_switch_case_dependence(self):
        cfg = cfg_of("switch (n) {\ncase 1:\nn = 1;\nbreak;\n}")
        pairs = cd_pairs(cfg)
        assert any(a == 2 and label == "case" for a, _, label in pairs)

    def test_break_makes_following_code_dependent(self):
        cfg = cfg_of("while (n) {\nif (n > 5) {\nbreak;\n}\nn--;\n}")
        pairs = cd_pairs(cfg)
        # n-- executes only when the inner if took its false branch
        assert (3, 6, "false") in pairs

    def test_infinite_loop_body_gets_postdominator(self):
        # for(;;) body cannot reach exit; auxiliary edge must still
        # assign post-dominators without crashing.
        cfg = cfg_of("for (;;) {\nn = 1;\n}")
        ipdom = post_dominator_tree(cfg)
        assert set(ipdom) >= set(cfg.nodes)

    def test_labels_match_cfg_edges(self):
        cfg = cfg_of("if (n) {\nn = 1;\n} else {\nn = 2;\n}")
        for _, _, label in control_dependences(cfg):
            assert label in ("true", "false", "case", "default", "",
                             "goto")
