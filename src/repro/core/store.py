"""Gadget-dataset persistence (JSON-lines).

Extracting and normalizing gadgets from a large corpus is the slowest
non-training stage; this store saves the labelled token streams so
experiments can reload them instead of re-slicing.  The format is
line-oriented JSON — append-friendly, diff-able, and independent of the
in-memory classes.
"""

from __future__ import annotations

import json
import logging
from pathlib import Path
from typing import Iterable, Sequence

from ..slicing.special_tokens import SlicingCriterion, TokenCategory
from .extract import LabeledGadget

__all__ = ["save_gadgets", "load_gadgets", "iter_gadgets"]

logger = logging.getLogger(__name__)

_FORMAT_VERSION = 1


def _to_record(gadget: LabeledGadget) -> dict:
    return {
        "v": _FORMAT_VERSION,
        "tokens": list(gadget.tokens),
        "label": gadget.label,
        "category": gadget.category,
        "case": gadget.case_name,
        "kind": gadget.kind,
        "cwe": gadget.cwe,
        "criterion": {
            "function": gadget.criterion.function,
            "line": gadget.criterion.line,
            "category": gadget.criterion.category.value,
            "token": gadget.criterion.token,
        },
    }


def _from_record(record: dict) -> LabeledGadget:
    if record.get("v") != _FORMAT_VERSION:
        raise ValueError(
            f"unsupported gadget record version {record.get('v')!r}")
    criterion_data = record["criterion"]
    criterion = SlicingCriterion(
        function=criterion_data["function"],
        line=int(criterion_data["line"]),
        category=TokenCategory(criterion_data["category"]),
        token=criterion_data["token"],
    )
    return LabeledGadget(
        tokens=tuple(record["tokens"]),
        label=int(record["label"]),
        category=record["category"],
        case_name=record["case"],
        criterion=criterion,
        kind=record["kind"],
        cwe=record.get("cwe", ""),
    )


def save_gadgets(gadgets: Sequence[LabeledGadget],
                 path: str | Path, *, atomic: bool = False) -> int:
    """Write gadgets to a .jsonl file; returns the record count.

    With ``atomic`` the records go to a sibling temp file that is
    renamed over ``path`` at the end, so concurrent readers (and other
    writers racing on the same path, e.g. parallel extraction caches)
    never observe a torn file.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    target = path.with_name(path.name + ".tmp") if atomic else path
    with target.open("w") as handle:
        for gadget in gadgets:
            handle.write(json.dumps(_to_record(gadget),
                                    separators=(",", ":")) + "\n")
    if atomic:
        target.replace(path)
    return len(gadgets)


def iter_gadgets(path: str | Path) -> Iterable[LabeledGadget]:
    """Stream gadgets from a .jsonl file (constant memory).

    A torn *final* line — the partial write of a process killed
    mid-append — is skipped with a logged warning: every complete
    record before it is still served, so crash recovery resumes from
    the survivors instead of refusing the whole file.  Corruption
    anywhere else still raises, and so does a file whose *only*
    payload line is bad — that is damage (or a foreign file), not a
    torn tail, and serving it as "zero gadgets" would turn corruption
    into silently wrong results.
    """
    with Path(path).open() as handle:
        served = 0
        for line_number, line in enumerate(handle, start=1):
            stripped = line.strip()
            if not stripped:
                continue
            try:
                record = json.loads(stripped)
            except json.JSONDecodeError as error:
                if served and handle.read(1) == "":
                    logger.warning(
                        "%s:%d: skipping truncated final line "
                        "(partial write from an interrupted process)",
                        path, line_number)
                    return
                raise ValueError(
                    f"{path}:{line_number}: bad JSON") from error
            served += 1
            yield _from_record(record)


def load_gadgets(path: str | Path) -> list[LabeledGadget]:
    """Load all gadgets from a .jsonl file."""
    return list(iter_gadgets(path))
