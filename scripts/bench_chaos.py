#!/usr/bin/env python3
"""Chaos harness: prove the serving layer never loses a verdict.

Trains a small detector, computes a serial oracle (in-process
``ScanService`` records, themselves pinned byte-identical to
``detect_case`` by the test suite), then runs the scan corpus through
the real daemon (``python -m repro serve``) under one injected fault
regime per phase::

    PYTHONPATH=src python scripts/bench_chaos.py          # full soak
    PYTHONPATH=src python scripts/bench_chaos.py --smoke  # CI-sized

Phases (all via deterministic ``REPRO_FAULTS`` plans, no randomness):

* ``baseline``       — no faults; reference throughput.
* ``worker_kill``    — two scorer workers die mid-scan; the pool
  watchdog resubmits their batches and respawns replacements.
* ``slow_worker``    — a worker stalls on one batch; siblings keep
  the corpus moving.
* ``conn_drop``      — the server severs the client's connection
  mid-batch (twice); the client reconnects and resubmits.
* ``shed_storm``     — a run of admissions is forcibly shed with
  ``retry_after_ms`` hints; the client backs off and retries.
* ``degraded``       — every process batch crashes and the restart
  budget is 1: the service must demote to in-process scoring and
  keep answering (degraded-mode throughput is the measurement).
* ``server_restart`` — the daemon is SIGKILLed mid-batch and a
  successor starts on the same socket; the client reconnects and
  resubmits (recovery latency is the measurement).

The gates hold in every mode, smoke included: **zero lost verdicts**
(every request eventually answers ``ok``) and **byte-identical
records** against the serial oracle, in every phase.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import tempfile
import threading
import time
from dataclasses import replace
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.core.config import SCALE_PRESETS  # noqa: E402
from repro.core.detector import SEVulDet  # noqa: E402
from repro.core.ipc import RetryPolicy, ScanClient  # noqa: E402
from repro.core.serve import ScanService  # noqa: E402
from repro.datasets.sard import generate_sard_corpus  # noqa: E402
from repro.testing import faults  # noqa: E402

#: generous but bounded: a phase must recover inside this envelope
RETRY = RetryPolicy(attempts=15, base_delay=0.1, max_delay=1.0,
                    jitter=0.1)


def start_daemon(model_path: Path, socket_path: Path, *,
                 workers: int, fault_spec: str | None = None,
                 max_restarts: int | None = None) -> subprocess.Popen:
    env = dict(os.environ, PYTHONPATH=str(ROOT / "src"))
    if fault_spec:
        env[faults.ENV_VAR] = fault_spec
    else:
        env.pop(faults.ENV_VAR, None)
    command = [sys.executable, "-m", "repro", "serve",
               "--model", str(model_path),
               "--socket", str(socket_path),
               "--workers", str(workers), "--batch-size", "16"]
    if max_restarts is not None:
        command += ["--max-restarts", str(max_restarts)]
    proc = subprocess.Popen(command, env=env,
                            stdout=subprocess.PIPE,
                            stderr=subprocess.STDOUT, text=True)
    deadline = time.time() + 120
    while time.time() < deadline:
        if proc.poll() is not None:
            raise RuntimeError(
                f"daemon exited early:\n{proc.stdout.read()}")
        if socket_path.exists():
            try:
                with ScanClient(str(socket_path), timeout=5,
                                retry=None) as ping:
                    if ping.ping().get("status") == "ok":
                        return proc
            except OSError:
                pass
        time.sleep(0.1)
    proc.kill()
    raise RuntimeError("daemon did not come up within 120s")


def stop_daemon(proc: subprocess.Popen, address: str) -> dict | None:
    """Collect final stats, then shut the daemon down."""
    stats = None
    try:
        with ScanClient(address, timeout=30, retry=None) as client:
            stats = client.stats()
            client.shutdown()
        proc.wait(timeout=60)
    except (OSError, subprocess.TimeoutExpired):
        pass
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=30)
    return stats


def scan_all(address: str, requests: list[dict], *,
             chunk: int = 16) -> tuple[list[dict], ScanClient]:
    """The whole corpus through one retrying client, chunked below
    the admission budget; returns positional responses."""
    responses: list[dict] = []
    with ScanClient(address, timeout=300, retry=RETRY) as client:
        for start in range(0, len(requests), chunk):
            responses.extend(
                client.scan_batch(requests[start:start + chunk]))
        counters = {"reconnects": client.reconnects,
                    "shed_retried": client.shed_retried}
    return responses, counters


def check_phase(responses: list[dict], oracle: list[dict]) -> dict:
    """The two gates: nothing lost, nothing different."""
    lost = sum(1 for r in responses if r.get("status") != "ok")
    got = [r.get("verdict") for r in responses]
    return {"requests": len(responses), "lost": lost,
            "identical": got == oracle}


def run_phase(name: str, model_path: Path, tmp: Path,
              requests: list[dict], oracle: list[dict], *,
              fault_spec: str | None = None, workers: int = 2,
              max_restarts: int | None = None) -> dict:
    socket_path = tmp / f"{name}.sock"
    daemon = start_daemon(model_path, socket_path, workers=workers,
                          fault_spec=fault_spec,
                          max_restarts=max_restarts)
    address = str(socket_path)
    try:
        started = time.perf_counter()
        responses, counters = scan_all(address, requests)
        elapsed = time.perf_counter() - started
        with ScanClient(address, timeout=30, retry=None) as probe:
            health = probe.health()
    finally:
        stats = stop_daemon(daemon, address)
    result = check_phase(responses, oracle)
    result.update({
        "seconds": round(elapsed, 3),
        "cases_per_sec": round(len(responses) / elapsed, 2),
        "health": health.get("health"),
        "client": counters,
    })
    service = (stats or {}).get("service") or {}
    resilience = service.get("resilience")
    if resilience:
        result["resilience"] = {
            key: resilience[key]
            for key in ("scorer", "fallbacks", "retries",
                        "worker_deaths", "respawns",
                        "resubmitted_jobs")}
    server = (stats or {}).get("server") or {}
    result["server"] = {
        "shed": server.get("shed", 0),
        "deadline_expired": server.get("deadline_expired", 0),
        "conn_drops": server.get("conn_drops", 0)}
    return result


def run_restart_phase(model_path: Path, tmp: Path,
                      requests: list[dict],
                      oracle: list[dict]) -> dict:
    """SIGKILL the daemon mid-batch, relaunch on the same socket."""
    socket_path = tmp / "restart.sock"
    address = str(socket_path)
    # wedge one early case so the batch is provably in flight when
    # the daemon dies; the successor gets a fault-free environment
    daemon = start_daemon(model_path, socket_path, workers=2,
                          fault_spec="hang@case:#2:2.0")
    outcome: dict = {}

    def run_client() -> None:
        started = time.perf_counter()
        outcome["responses"], outcome["client"] = scan_all(
            address, requests)
        outcome["seconds"] = time.perf_counter() - started

    worker = threading.Thread(target=run_client, daemon=True)
    worker.start()
    time.sleep(0.5)  # let the first chunk reach dispatch
    killed_at = time.perf_counter()
    daemon.send_signal(signal.SIGKILL)
    daemon.wait(timeout=30)
    successor = start_daemon(model_path, socket_path, workers=2)
    recovery = time.perf_counter() - killed_at
    try:
        worker.join(timeout=240.0)
        if worker.is_alive():
            raise RuntimeError(
                "client did not finish after daemon restart")
    finally:
        stop_daemon(successor, address)
    result = check_phase(outcome["responses"], oracle)
    result.update({
        "seconds": round(outcome["seconds"], 3),
        "recovery_seconds": round(recovery, 3),
        "client": outcome["client"],
    })
    return result


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run: tiny corpus, one pass, "
                             "same zero-loss + identity gates")
    parser.add_argument("--rounds", type=int, default=None,
                        help="corpus passes per phase "
                             "(default 3, smoke 1)")
    parser.add_argument("--output", type=Path,
                        default=ROOT / "benchmarks" / "results"
                        / "BENCH_chaos.json")
    args = parser.parse_args(argv)

    scan_n = 10 if args.smoke else 24
    train_n = 20 if args.smoke else 80
    rounds = args.rounds or (1 if args.smoke else 3)

    detector = SEVulDet(scale=SCALE_PRESETS["small"], seed=3)
    detector.fit(generate_sard_corpus(train_n, seed=31))
    cases = generate_sard_corpus(scan_n, seed=99)
    requests = [{"name": case.name, "source": case.source}
                for case in cases] * rounds

    # serial oracle: what the server must reproduce under every fault
    stripped = [replace(case, vulnerable=False,
                        vulnerable_lines=frozenset(), cwe="",
                        category="", origin="serve")
                for case in cases]
    with ScanService(detector, workers=2, batch_size=16) as service:
        oracle = [v.as_record()
                  for v in service.scan_cases(stripped)] * rounds

    regimes = [
        ("baseline", dict()),
        ("worker_kill", dict(
            fault_spec="crash@score-batch:2;crash@score-batch:5",
            workers=3)),
        ("slow_worker", dict(fault_spec="hang@score-batch:3:1.0")),
        ("conn_drop", dict(
            fault_spec="drop@server-conn:#5;drop@server-conn:#11")),
        ("shed_storm", dict(fault_spec="drop@server-admit:#3-8")),
        ("degraded", dict(fault_spec="crash@score-batch:*",
                          max_restarts=1)),
    ]

    phases: dict[str, dict] = {}
    with tempfile.TemporaryDirectory() as tmpdir:
        tmp = Path(tmpdir)
        model_path = tmp / "model.npz"
        detector.save(model_path)
        for name, options in regimes:
            print(f"phase {name} "
                  f"(faults={options.get('fault_spec', '-')}) ...",
                  flush=True)
            phases[name] = run_phase(name, model_path, tmp,
                                     requests, oracle, **options)
            print(f"  {phases[name]['requests']} requests, "
                  f"lost={phases[name]['lost']}, identical="
                  f"{phases[name]['identical']}, "
                  f"{phases[name]['seconds']}s, "
                  f"health={phases[name]['health']}", flush=True)
        print("phase server_restart (SIGKILL mid-batch) ...",
              flush=True)
        phases["server_restart"] = run_restart_phase(
            model_path, tmp, requests, oracle)
        print(f"  {phases['server_restart']['requests']} requests, "
              f"lost={phases['server_restart']['lost']}, identical="
              f"{phases['server_restart']['identical']}, recovery="
              f"{phases['server_restart']['recovery_seconds']}s",
              flush=True)

    baseline = phases["baseline"]["seconds"]
    degraded = phases["degraded"]
    degraded["throughput_vs_baseline"] = round(
        baseline / degraded["seconds"], 3) if degraded["seconds"] \
        else 0.0

    targets_met = {
        "zero_lost": all(p["lost"] == 0 for p in phases.values()),
        "identical": all(p["identical"] for p in phases.values()),
        "workers_respawned":
            phases["worker_kill"].get("resilience", {})
            .get("respawns", 0) >= 1,
        "degraded_mode_engaged":
            degraded.get("health") == "degraded"
            and degraded.get("resilience", {})
            .get("fallbacks", 0) >= 1,
        "client_reconnected":
            phases["conn_drop"]["client"]["reconnects"] >= 1
            and phases["server_restart"]["client"]["reconnects"] >= 1,
        "shed_retried":
            phases["shed_storm"]["client"]["shed_retried"] >= 1,
    }

    report = {
        "benchmark": "chaos",
        "mode": "smoke" if args.smoke else "full",
        "corpus": {"train_cases": train_n, "scan_cases": scan_n,
                   "rounds": rounds,
                   "requests_per_phase": len(requests)},
        "retry_policy": {"attempts": RETRY.attempts,
                         "base_delay": RETRY.base_delay,
                         "max_delay": RETRY.max_delay},
        "phases": phases,
        "targets": {key: True for key in targets_met},
        "targets_met": targets_met,
    }
    args.output.parent.mkdir(parents=True, exist_ok=True)
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.output}")

    failed = [key for key, met in targets_met.items() if not met]
    if failed:
        print(f"error: chaos targets not met: {', '.join(failed)}",
              file=sys.stderr)
        return 1
    print("all chaos targets met: no verdict lost, all "
          "byte-identical")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
