"""Test-support utilities (deterministic fault injection)."""

from . import faults

__all__ = ["faults"]
