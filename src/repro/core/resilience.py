"""Fault tolerance: per-case budgets, quarantine, and checkpoints.

The ROADMAP's target corpora (SARD-scale, then real-world code) are
messy: single pathological programs hang the slicer, exhaust the
recursion stack, or take a pool worker down with them, and a multi-hour
``fit`` can die with nothing to show for it.  This module collects the
mechanisms :func:`repro.core.extract.extract_gadgets` and
:func:`repro.core.train.train_classifier` use to survive all of
that:

* :func:`time_limit` — a SIGALRM-based per-case wall-clock budget that
  turns a hang into a catchable :class:`CaseTimeout` (works identically
  inline and inside pool workers; degrades to a no-op off the main
  thread or on platforms without ``SIGALRM``).
* :class:`CaseFailure` — the structured record a failed case leaves
  behind instead of an exception or a silent skip.
* :class:`Quarantine` — a persistent JSONL list of poison cases keyed
  by content fingerprint, reloaded on later runs so a case that hung
  yesterday is skipped for pennies today (and retried automatically
  the moment its source changes, because the fingerprint changes).
* :class:`TrainingCheckpoint` — atomic (temp file + rename) epoch
  checkpoints of model weights, Adam moments, RNG state, and the loss
  trajectory, so an interrupted training run resumed with ``--resume``
  finishes with byte-identical weights to an uninterrupted one.

Recovery *events* (timeouts, retries, quarantines, checkpoint writes)
are counted by the caller's :class:`~repro.core.telemetry.Telemetry`;
this module only supplies the mechanisms.
"""

from __future__ import annotations

import json
import logging
import re
import signal
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator

import numpy as np

__all__ = ["CaseTimeout", "time_limit", "CaseFailure",
           "QUARANTINE_REASONS", "Quarantine", "coerce_quarantine",
           "TrainingCheckpoint", "CHECKPOINT_VERSION"]

logger = logging.getLogger(__name__)

#: Failure reasons poisonous enough to quarantine: retrying them is
#: expensive (hangs burn the full budget again, allocation storms
#: thrash the host).  Parse errors stay un-quarantined — re-failing is
#: cheap and keeps the diagnostics visible on every run.  'worker-crash'
#: is also excluded: pool breakage takes a whole *chunk* down, so the
#: record cannot name the guilty case and quarantining would blacklist
#: innocent chunk-mates.
QUARANTINE_REASONS = frozenset({"timeout", "memory"})


class CaseTimeout(Exception):
    """A case exceeded its wall-clock extraction budget."""


def _on_alarm(signum, frame):  # pragma: no cover - trivial
    raise CaseTimeout()


@contextmanager
def time_limit(seconds: float | None) -> Iterator[None]:
    """Raise :class:`CaseTimeout` in the block after ``seconds``.

    Uses ``SIGALRM`` (via ``setitimer``, so fractional budgets work),
    which interrupts pure-Python hangs and blocking sleeps alike.  When
    ``seconds`` is None/0, off the main thread, or on a platform
    without ``SIGALRM``, the block runs unguarded — callers degrade to
    the pre-timeout behavior rather than erroring.
    """
    if not seconds or seconds <= 0 or not hasattr(signal, "SIGALRM"):
        yield
        return
    try:
        previous = signal.signal(signal.SIGALRM, _on_alarm)
    except ValueError:  # not the main thread of this process
        yield
        return
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


@dataclass
class CaseFailure:
    """Structured record of one case the pipeline could not extract.

    Attributes:
        case_name: the failing case.
        reason: 'parse-error' | 'timeout' | 'recursion' | 'memory' |
            'worker-crash' | 'quarantined' | 'error'.
        detail: human-readable specifics (exception text, budget).
        attempts: extraction attempts consumed (0 for quarantine skips).
        quarantined: whether this run added the case to the quarantine.
    """

    case_name: str
    reason: str
    detail: str = ""
    attempts: int = 1
    quarantined: bool = False

    def as_record(self) -> dict:
        return {"case": self.case_name, "reason": self.reason,
                "detail": self.detail, "attempts": self.attempts,
                "quarantined": self.quarantined}


class Quarantine:
    """Persistent poison-case list (JSON lines, append-only op log).

    Cases are keyed by :meth:`~repro.datasets.manifest.TestCase.
    fingerprint`, i.e. by *content*: editing a quarantined case's
    source automatically un-quarantines it.  Corrupt or truncated
    lines are skipped on load — a half-written record can never take
    the whole list (or the run reading it) down.

    Entries used to be permanent, which turned *transient* failures
    (a timeout under load) into forever-skips.  The file is now an op
    log replayed on load: an ``add`` record activates a fingerprint,
    each ``{"op": "skip"}`` marker counts one pre-skip, and an
    ``{"op": "discharge"}`` marker retires the entry (appended when a
    quarantined case extracts cleanly again, or by operator tooling).
    With ``retry_after=N`` an entry that has been skipped N times
    stops matching :meth:`__contains__` — the next run retries it for
    real; a repeat failure re-:meth:`add`\\ s it with a fresh skip
    budget, a success :meth:`discharge`\\ s it.  The default
    ``retry_after=None`` keeps the historical skip-forever behavior.
    """

    def __init__(self, path: str | Path,
                 retry_after: int | None = None):
        self.path = Path(path)
        self.retry_after = retry_after
        #: active fingerprint -> pre-skips observed since its last add
        self._active: dict[str, int] | None = None

    def _load(self) -> dict[str, int]:
        if self._active is None:
            active: dict[str, int] = {}
            skipped = 0
            try:
                with self.path.open() as handle:
                    for line in handle:
                        line = line.strip()
                        if not line:
                            continue
                        try:
                            record = json.loads(line)
                            fingerprint = str(record["fingerprint"])
                            op = record.get("op", "add")
                        except (ValueError, TypeError, KeyError):
                            skipped += 1  # tolerate torn lines
                            continue
                        if op == "add":
                            active[fingerprint] = 0
                        elif op == "skip":
                            if fingerprint in active:
                                active[fingerprint] += 1
                        elif op == "discharge":
                            active.pop(fingerprint, None)
                        else:
                            skipped += 1
            except OSError:
                pass
            if skipped:
                # visible, not fatal: operators should know records
                # were lost to a torn write, but a half-written line
                # must never take the run down
                logger.warning(
                    "%s: skipped %d corrupt quarantine line(s) "
                    "(torn writes from an interrupted process)",
                    self.path, skipped)
            self._active = active
        return self._active

    def _append(self, record: dict) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a") as handle:
            handle.write(json.dumps(record, separators=(",", ":"))
                         + "\n")

    @staticmethod
    def _fingerprint_of(case) -> str:
        return case if isinstance(case, str) else case.fingerprint()

    def __contains__(self, case) -> bool:
        """Should this case (or raw fingerprint) be pre-skipped?

        False once an entry has exhausted its ``retry_after`` skip
        budget — the case is *listed* but due for a retry.
        """
        skips = self._load().get(self._fingerprint_of(case))
        if skips is None:
            return False
        return self.retry_after is None or skips < self.retry_after

    def listed(self, case) -> bool:
        """Is the case active in the log, retry-eligible or not?"""
        return self._fingerprint_of(case) in self._load()

    def __len__(self) -> int:
        return len(self._load())

    def add(self, case, reason: str, detail: str = "") -> bool:
        """Record a poison case; returns False if already skippable.

        Re-adding a retry-eligible entry (its skip budget ran out and
        the retry failed again) succeeds and resets the budget.
        """
        fingerprint = self._fingerprint_of(case)
        if fingerprint in self:
            return False
        self._load()[fingerprint] = 0
        self._append({"v": 1, "fingerprint": fingerprint,
                      "name": getattr(case, "name", ""),
                      "reason": reason, "detail": detail})
        return True

    def note_skip(self, case) -> None:
        """Count one pre-skip against the entry's retry budget."""
        fingerprint = self._fingerprint_of(case)
        active = self._load()
        if fingerprint not in active:
            return
        active[fingerprint] += 1
        self._append({"op": "skip", "fingerprint": fingerprint})

    def discharge(self, case) -> bool:
        """Retire an entry (the case extracts cleanly again)."""
        fingerprint = self._fingerprint_of(case)
        active = self._load()
        if fingerprint not in active:
            return False
        del active[fingerprint]
        self._append({"op": "discharge", "fingerprint": fingerprint})
        return True

    def reset(self) -> int:
        """Drop every entry (the ``--requarantine`` escape hatch).

        Truncates the log; returns how many active entries were
        dropped.  Cases that still fail re-enter on the next run.
        """
        dropped = len(self._load())
        self._active = {}
        if self.path.exists():
            self.path.write_text("")
        return dropped

    def records(self) -> list[dict]:
        """All readable quarantine records (diagnostics/reporting)."""
        out: list[dict] = []
        try:
            with self.path.open() as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        record = json.loads(line)
                    except ValueError:
                        continue
                    if isinstance(record, dict):
                        out.append(record)
        except OSError:
            pass
        return out


def coerce_quarantine(quarantine) -> Quarantine | None:
    """Accept a Quarantine, a JSONL path, or None."""
    if quarantine is None or isinstance(quarantine, Quarantine):
        return quarantine
    return Quarantine(quarantine)


#: Bump when the checkpoint payload layout changes.
CHECKPOINT_VERSION = 1

_MODEL_PREFIX = "model::"
_OPTIM_PREFIX = "optim::"
_BEST_PREFIX = "best::"

#: Positional optimizer moment keys, e.g. Adam's ``m0`` / ``v12``.
_MOMENT_KEY = re.compile(r"^([a-z]+?)(\d+)$")


def _optim_key_to_name(key: str, param_names: list[str] | None) -> str:
    """Rewrite a positional moment key (``m0``) to a name-keyed one
    (``m::fc1.weight``); scalar keys (``t``) and keys with no matching
    name pass through unchanged."""
    if param_names is None:
        return key
    match = _MOMENT_KEY.match(key)
    if match is None:
        return key
    kind, index = match.group(1), int(match.group(2))
    if index >= len(param_names):
        return key
    return f"{kind}::{param_names[index]}"


def _optim_state_to_indices(optim_state: dict[str, np.ndarray],
                            param_names: list[str] | None,
                            path) -> dict[str, np.ndarray]:
    """Translate name-keyed moment arrays (``m::fc1.weight``) back to
    the positional keys the optimizer's ``load_state_dict`` expects.
    Legacy archives (no ``param_names`` metadata, positional keys on
    disk) pass through untouched."""
    if not param_names:
        return optim_state
    index_of = {name: i for i, name in enumerate(param_names)}
    translated: dict[str, np.ndarray] = {}
    for key, value in optim_state.items():
        kind, sep, name = key.partition("::")
        if not sep:
            translated[key] = value
            continue
        if name not in index_of:
            raise ValueError(
                f"checkpoint {path} stores optimizer state for "
                f"parameter {name!r}, which is not in the archive's "
                f"param_names list — the archive is corrupt")
        translated[f"{kind}{index_of[name]}"] = value
    return translated


@dataclass
class CheckpointState:
    """One loaded checkpoint, ready to be restored into a run."""

    epoch: int  # last *completed* epoch (0-based)
    model_state: dict[str, np.ndarray]
    optim_state: dict[str, np.ndarray]
    best_state: dict[str, np.ndarray] | None
    rng_state: dict
    model_rng_states: dict
    losses: list[float]
    val_f1: list[float]
    best_epoch: int
    best_f1: float
    stale: int
    config_token: str

    @property
    def next_epoch(self) -> int:
        return self.epoch + 1


class TrainingCheckpoint:
    """Atomic on-disk training checkpoints (one ``.npz`` per run).

    The archive bundles everything the training loop's future depends
    on — model parameters, Adam moments and step count, the numpy
    Generator's bit-generator state, the loss/early-stopping
    trajectory, and a ``config_token`` describing the run's
    hyper-parameters — so a resumed run replays the exact batch
    schedule and optimizer path of the run it continues.  Writes go to
    a sibling temp file renamed over the target: a crash mid-write
    leaves the previous checkpoint intact, never a torn archive.
    """

    FILENAME = "checkpoint.npz"

    def __init__(self, directory: str | Path):
        self.directory = Path(directory)
        self.path = self.directory / self.FILENAME

    def exists(self) -> bool:
        return self.path.exists()

    def clear(self) -> None:
        """Remove the checkpoint (e.g. after a completed run)."""
        try:
            self.path.unlink()
        except FileNotFoundError:
            pass

    def save(self, *, epoch: int, model, optimizer,
             rng: np.random.Generator, losses: list[float],
             val_f1: list[float], best_epoch: int, best_f1: float,
             stale: int, best_state: dict[str, np.ndarray] | None,
             config_token: str,
             param_names: list[str] | None = None) -> None:
        """Persist the state reached after completing ``epoch``.

        ``param_names`` (dotted parameter names in optimizer order,
        from :meth:`~repro.nn.layers.Module.named_parameters`) keys the
        optimizer moment arrays by name — ``optim::m::fc1.weight`` —
        instead of the optimizer's positional ``m0``/``v0`` keys, so an
        archive stays readable if parameter *order* shifts but names do
        not.  Without names the positional keys are stored as before.
        """
        from ..nn.serialize import save_npz_atomic

        arrays: dict[str, np.ndarray] = {}
        for key, value in model.state_dict().items():
            arrays[_MODEL_PREFIX + key] = value
        for key, value in optimizer.state_dict().items():
            arrays[_OPTIM_PREFIX + _optim_key_to_name(key, param_names)
                   ] = value
        if best_state is not None:
            for key, value in best_state.items():
                arrays[_BEST_PREFIX + key] = value
        metadata = {
            "version": CHECKPOINT_VERSION,
            "epoch": int(epoch),
            "rng_state": rng.bit_generator.state,
            # dropout draws from the model's own generator(s); resume
            # must continue those streams mid-sequence too
            "model_rng": getattr(model, "rng_states", dict)(),
            "losses": [float(x) for x in losses],
            "val_f1": [float(x) for x in val_f1],
            "best_epoch": int(best_epoch),
            "best_f1": float(best_f1),
            "stale": int(stale),
            "has_best": best_state is not None,
            "config_token": config_token,
            "param_names": param_names,
        }
        save_npz_atomic(self.path, arrays, metadata)

    def load(self, config_token: str | None = None
             ) -> CheckpointState | None:
        """Read the checkpoint back; None when there is none yet.

        Raises ``ValueError`` with the offending field named when the
        archive belongs to a different checkpoint format version or —
        if ``config_token`` is given — to a run with different
        hyper-parameters, instead of resuming into silent divergence.
        """
        if not self.path.exists():
            return None
        model_state: dict[str, np.ndarray] = {}
        optim_state: dict[str, np.ndarray] = {}
        best_state: dict[str, np.ndarray] = {}
        with np.load(self.path) as archive:
            metadata = json.loads(
                archive["__metadata__"].tobytes().decode())
            for key in archive.files:
                if key.startswith(_MODEL_PREFIX):
                    model_state[key[len(_MODEL_PREFIX):]] = archive[key]
                elif key.startswith(_OPTIM_PREFIX):
                    optim_state[key[len(_OPTIM_PREFIX):]] = archive[key]
                elif key.startswith(_BEST_PREFIX):
                    best_state[key[len(_BEST_PREFIX):]] = archive[key]
        version = metadata.get("version")
        if version != CHECKPOINT_VERSION:
            raise ValueError(
                f"checkpoint {self.path} has format version {version!r} "
                f"but this code writes version {CHECKPOINT_VERSION}; "
                f"delete it (or finish the run with matching code)")
        optim_state = _optim_state_to_indices(
            optim_state, metadata.get("param_names"), self.path)
        saved_token = metadata.get("config_token", "")
        if config_token is not None and saved_token != config_token:
            raise ValueError(
                f"checkpoint {self.path} was written by a run with "
                f"different settings ({saved_token!r}) than this one "
                f"({config_token!r}); resuming would diverge — use a "
                f"fresh --checkpoint-dir or matching hyper-parameters")
        return CheckpointState(
            epoch=int(metadata["epoch"]),
            model_state=model_state,
            optim_state=optim_state,
            best_state=best_state if metadata.get("has_best") else None,
            rng_state=metadata["rng_state"],
            model_rng_states=metadata.get("model_rng", {}),
            losses=list(metadata.get("losses", [])),
            val_f1=list(metadata.get("val_f1", [])),
            best_epoch=int(metadata.get("best_epoch", -1)),
            best_f1=float(metadata.get("best_f1", -1.0)),
            stale=int(metadata.get("stale", 0)),
            config_token=saved_token,
        )
