"""Flawfinder simulacrum: lexical risky-call scanning.

Flawfinder greps for calls to functions in a risk database and reports
a hit list ranked by risk level, with no dataflow or path reasoning —
which is exactly why the paper's Fig 5 shows it with both high FPR
(guarded uses still flagged) and high FNR (non-call vulnerabilities
invisible).  The rule DB below is the C-subset intersection of the real
tool's database.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..lang.lexer import TokenKind, tokenize

__all__ = ["LexicalFinding", "FLAWFINDER_RULES", "FlawfinderScanner"]


@dataclass(frozen=True)
class LexicalFinding:
    """One risky-call hit."""

    line: int
    function: str
    risk: int
    message: str


#: function -> (risk level 1-5, message)
FLAWFINDER_RULES: dict[str, tuple[int, str]] = {
    "gets": (5, "unbounded read into buffer"),
    "strcpy": (4, "unbounded string copy"),
    "strcat": (4, "unbounded string concatenation"),
    "sprintf": (4, "unbounded formatted write"),
    "vsprintf": (4, "unbounded formatted write"),
    "scanf": (4, "unbounded scanf conversion"),
    "strncpy": (1, "may not NUL-terminate"),
    "strncat": (1, "length easily miscalculated"),
    "memcpy": (2, "length argument may be attacker-derived"),
    "memmove": (2, "length argument may be attacker-derived"),
    "printf": (4, "format string may be attacker-controlled"),
    "fprintf": (4, "format string may be attacker-controlled"),
    "snprintf": (1, "format handling"),
    "read": (1, "length handling"),
    "recv": (1, "length handling"),
    "malloc": (1, "unchecked allocation"),
    "realloc": (2, "pointer aliasing on failure"),
    "alloca": (3, "stack allocation of attacker size"),
    "system": (4, "command injection"),
    "popen": (4, "command injection"),
    "execl": (4, "command injection"),
    "execv": (4, "command injection"),
    "atoi": (1, "no error detection"),
    "strlen": (1, "unterminated string walk"),
    "fgets": (1, "length handling"),
}


class FlawfinderScanner:
    """Rank-and-threshold lexical scanner.

    Args:
        min_risk: report findings at or above this level; the
            program-level verdict is "vulnerable" when any finding
            survives the threshold (default 2, roughly `flawfinder
            --minlevel=2`: level-1 chatter ignored, everything else
            reported).
    """

    name = "Flawfinder"

    def __init__(self, min_risk: int = 2):
        self.min_risk = min_risk

    def scan(self, source: str) -> list[LexicalFinding]:
        """All findings in one translation unit."""
        tokens = tokenize(source)
        findings: list[LexicalFinding] = []
        for index, token in enumerate(tokens):
            if token.kind is not TokenKind.IDENT:
                continue
            rule = FLAWFINDER_RULES.get(token.text)
            if rule is None:
                continue
            follows_call = (index + 1 < len(tokens)
                            and tokens[index + 1].is_punct("("))
            if not follows_call:
                continue
            risk, message = rule
            # printf-family: constant format string downgrades the risk.
            if token.text in ("printf", "fprintf", "scanf"):
                arg_index = index + 2 + (
                    2 if token.text in ("fprintf",) else 0)
                if arg_index < len(tokens) and \
                        tokens[arg_index].kind is TokenKind.STRING:
                    risk = 1
            findings.append(LexicalFinding(token.line, token.text, risk,
                                           message))
        return [f for f in findings if f.risk >= self.min_risk]

    def flags(self, source: str) -> bool:
        """Program-level verdict."""
        return bool(self.scan(source))
