"""Tests for call-graph construction and the program facade."""

from repro.lang.callgraph import analyze

SOURCE = """\
int helper(int x) {
    return x + 1;
}

void middle(char *data, int n) {
    int v = helper(n);
    strncpy(data, data, v);
}

int main() {
    char buf[16];
    fgets(buf, 16, 0);
    middle(buf, 3);
    middle(buf, 4);
    return 0;
}
"""


class TestCallGraph:
    def test_edges(self):
        program = analyze(SOURCE)
        assert program.call_graph.calls("main", "middle")
        assert program.call_graph.calls("middle", "helper")
        assert not program.call_graph.calls("helper", "middle")

    def test_library_calls_not_in_graph(self):
        program = analyze(SOURCE)
        assert not program.call_graph.calls("middle", "strncpy")

    def test_multiple_sites_recorded(self):
        program = analyze(SOURCE)
        sites = program.call_graph.sites_calling("middle")
        assert len(sites) == 2
        assert {s.line for s in sites} == {13, 14}

    def test_callers_and_callees(self):
        program = analyze(SOURCE)
        assert program.call_graph.callers("helper") == {"middle"}
        assert program.call_graph.callees("main") == {"middle"}

    def test_sites_in(self):
        program = analyze(SOURCE)
        assert {s.callee for s in program.call_graph.sites_in("main")} \
            == {"middle"}


class TestFacade:
    def test_function_names(self):
        program = analyze(SOURCE)
        assert program.function_names == ["helper", "middle", "main"]

    def test_pdgs_built_for_all(self):
        program = analyze(SOURCE)
        assert set(program.pdgs) == {"helper", "middle", "main"}

    def test_function_of_line(self):
        program = analyze(SOURCE)
        assert program.function_of_line(6) == "middle"
        assert program.function_of_line(1) == "helper"
        assert program.function_of_line(999) is None

    def test_node_at(self):
        program = analyze(SOURCE)
        node = program.node_at("middle", 6)
        assert node is not None and node.line == 6
        assert program.node_at("middle", 999) is None

    def test_statement_text(self):
        program = analyze(SOURCE)
        assert program.statement_text(6) == "int v = helper(n);"

    def test_recursion_handled(self):
        program = analyze("int f(int n) { if (n) { return f(n - 1); } "
                          "return 0; }")
        assert program.call_graph.calls("f", "f")
