"""End-to-end dataset preparation and training (paper Fig 2 glue).

The pipeline turns :class:`~repro.datasets.manifest.TestCase` programs
into labeled, normalized, encoded gadget samples (Steps I-IV's data
path) and provides the generic train/evaluate loops both the SEVulDet
model and the BRNN baselines share (Step V).
"""

from __future__ import annotations

import hashlib
import logging
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

import numpy as np

from ..datasets.manifest import TestCase
from ..embedding.vocab import Vocabulary
from ..embedding.word2vec import Word2Vec
from ..eval.metrics import Metrics, confusion_from, metrics_from
from ..lang.callgraph import analyze
from ..lang.parser import ParseError
from ..nn import (Adam, Module, Sample, bce_with_logits,
                  bucketed_batches, clip_grad_norm, fixed_length_batches,
                  no_grad, pad_or_truncate)
from ..slicing.gadget import CodeGadget, classic_gadget
from ..slicing.labeling import label_gadget
from ..slicing.normalize import NormalizedGadget, normalize_gadget
from ..slicing.path_sensitive import path_sensitive_gadget
from ..slicing.special_tokens import (SlicingCriterion, TokenCategory,
                                      find_special_tokens)
from ..testing import faults
from .resilience import (QUARANTINE_REASONS, CaseFailure, CaseTimeout,
                         TrainingCheckpoint, coerce_quarantine,
                         time_limit)
from .telemetry import Telemetry

__all__ = ["PIPELINE_VERSION", "SCORE_MIN_LENGTH", "LabeledGadget",
           "EncodedDataset", "extract_gadgets", "encode_gadgets",
           "train_classifier", "predict_proba", "evaluate_classifier",
           "TrainReport"]

logger = logging.getLogger(__name__)

#: Bump when extraction semantics change (slicing order, labeling,
#: gadget assembly, ...) — folded into extraction cache keys so stale
#: cached gadgets are never served across pipeline revisions.
PIPELINE_VERSION = 2

#: Minimum padded sample length fed to the flexible-length model: the
#: conv kernel (3) plus SPP need a floor, and padding to it is part of
#: the scoring contract — any batcher (training, predict_proba, the
#: scan service) must pad with the same floor or scores drift.
SCORE_MIN_LENGTH = 4

_CATEGORY_MAP = {
    "FC": TokenCategory.FUNCTION_CALL,
    "AU": TokenCategory.ARRAY_USAGE,
    "PU": TokenCategory.POINTER_USAGE,
    "AE": TokenCategory.ARITHMETIC_EXPR,
}


@dataclass
class LabeledGadget:
    """A normalized gadget with label and provenance."""

    tokens: tuple[str, ...]
    label: int
    category: str
    case_name: str
    criterion: SlicingCriterion
    kind: str  # 'classic' | 'path-sensitive'
    gadget: CodeGadget | None = None
    cwe: str = ""  # CWE id of the originating case ('' when unknown)

    def sample(self, vocab: Vocabulary) -> Sample:
        return Sample(tuple(vocab.encode(list(self.tokens))), self.label)


@dataclass(frozen=True)
class _ExtractConfig:
    """Per-run extraction knobs, picklable for worker processes."""

    kind: str
    wanted: frozenset[TokenCategory] | None
    use_control: bool
    keep_gadget: bool
    case_timeout: float | None = None

    def cache_token(self) -> str:
        """Stable string folded into extraction cache keys.

        ``case_timeout`` is deliberately excluded: the budget changes
        *whether* a case finishes, never what it produces.
        """
        categories = ("*" if self.wanted is None else
                      ",".join(sorted(c.value for c in self.wanted)))
        return (f"kind={self.kind};categories={categories};"
                f"control={int(self.use_control)}")


#: One per-case extraction result: (gadgets, telemetry snapshot,
#: failure record or None).  All three are picklable.
_CaseOutcome = tuple


def _extract_case(case: TestCase, config: _ExtractConfig
                  ) -> _CaseOutcome:
    """Pure per-case body of :func:`extract_gadgets`.

    Analyzes, slices, labels, and normalizes one program, returning its
    un-deduplicated gadgets in deterministic criterion order plus a
    telemetry snapshot and an optional :class:`CaseFailure`.  Depends
    only on its arguments, so it runs identically inline or in a worker
    process.  The exception boundary is deliberately wide: a messy
    real-world case may blow the recursion stack, exhaust memory, or
    hang past its wall-clock budget, and none of those may take the
    run (or the worker's siblings) down with it.
    """
    local = Telemetry()
    gadgets: list[LabeledGadget] = []
    failure: CaseFailure | None = None
    try:
        with time_limit(config.case_timeout):
            faults.fire("case", case.name)
            with local.stage("analyze"):
                program = analyze(case.source, path=case.name)
            manifest = case.manifest()
            for criterion in find_special_tokens(program, config.wanted):
                with local.stage("slice"):
                    if config.kind == "path-sensitive":
                        gadget = path_sensitive_gadget(program, criterion)
                    else:
                        gadget = classic_gadget(
                            program, criterion,
                            use_control=config.use_control)
                if not gadget.lines:
                    continue
                gadget.label = label_gadget(gadget, manifest)
                with local.stage("normalize"):
                    normalized = normalize_gadget(gadget)
                gadgets.append(
                    LabeledGadget(
                        tokens=tuple(normalized.tokens),
                        label=gadget.label,
                        category=criterion.category.value,
                        case_name=case.name,
                        criterion=criterion,
                        kind=config.kind,
                        gadget=gadget if config.keep_gadget else None,
                        cwe=case.cwe))
    except ParseError as error:
        failure = CaseFailure(case.name, "parse-error", str(error))
    except CaseTimeout:
        failure = CaseFailure(
            case.name, "timeout",
            f"exceeded the {config.case_timeout:g}s case budget")
    except RecursionError:
        failure = CaseFailure(case.name, "recursion",
                              "recursion limit while parsing/slicing")
    except MemoryError:
        failure = CaseFailure(case.name, "memory",
                              "out of memory while extracting")
    except (UnicodeError, OverflowError) as error:
        failure = CaseFailure(case.name, "error", repr(error))
    if failure is not None:
        local.count("cases_skipped")
        return [], local.as_dict(), failure
    local.count("cases_parsed")
    local.count("gadgets_extracted", len(gadgets))
    return gadgets, local.as_dict(), None


def _extract_chunk(cases: list[TestCase], config: _ExtractConfig
                   ) -> list[_CaseOutcome]:
    """Worker-side batch body: one pickle round-trip per chunk."""
    return [_extract_case(case, config) for case in cases]


def _pool_extract(cases: Sequence[TestCase], pending: list[int],
                  config: _ExtractConfig, workers: int,
                  telemetry: Telemetry
                  ) -> tuple[dict[int, _CaseOutcome], list[int]]:
    """Fan ``pending`` out over a process pool, chunk by chunk.

    Returns the per-index outcomes plus the indices whose chunk was
    lost to pool breakage (a worker died mid-chunk); the caller decides
    whether to retry those inline.  Unlike ``pool.map``, per-chunk
    futures keep every already-completed chunk when the pool breaks.
    """
    outcomes: dict[int, _CaseOutcome] = {}
    lost: list[int] = []
    chunksize = max(1, len(pending) // (workers * 4))
    chunks = [pending[i:i + chunksize]
              for i in range(0, len(pending), chunksize)]
    broke = False
    with ProcessPoolExecutor(max_workers=workers) as pool:
        submitted = [
            (pool.submit(_extract_chunk,
                         [cases[i] for i in chunk], config), chunk)
            for chunk in chunks]
        for future, chunk in submitted:
            try:
                results = future.result()
            except BrokenExecutor:
                if not broke:
                    broke = True
                    telemetry.count("pool_breaks")
                    logger.warning(
                        "extract_gadgets: process pool broke (worker "
                        "died); unfinished cases fall back to inline "
                        "extraction")
                lost.extend(chunk)
            else:
                outcomes.update(zip(chunk, results))
    return outcomes, lost


def _coerce_cache(cache):
    """Accept a GadgetCache, a directory path, or None."""
    if cache is None:
        return None
    if isinstance(cache, (str, Path)):
        from .cache import GadgetCache
        return GadgetCache(cache)
    return cache


def extract_gadgets(
    cases: Sequence[TestCase],
    kind: str = "path-sensitive",
    categories: tuple[str, ...] | None = None,
    *,
    use_control: bool = True,
    deduplicate: bool = True,
    keep_gadget: bool = False,
    workers: int = 0,
    cache=None,
    telemetry: Telemetry | None = None,
    case_timeout: float | None = None,
    retries: int = 1,
    quarantine=None,
    failures: list[CaseFailure] | None = None,
) -> list[LabeledGadget]:
    """Steps I-III: slice, assemble, label, and normalize every case.

    Cases are processed independently (optionally fanned out over a
    process pool and/or served from a content-addressed cache) and the
    per-case gadget lists are concatenated in corpus order before
    deduplication, so the output is byte-identical no matter how the
    work was scheduled — including runs where workers crashed and
    their cases were re-extracted inline.

    A pathological case can only ever cost its own result: hangs are
    cut off by ``case_timeout``, crashes break at most one pool chunk
    (whose cases fall back to inline extraction), deep nesting and
    memory exhaustion are caught at the per-case boundary, and cases
    listed in the ``quarantine`` are skipped before any work happens.

    Args:
        cases: corpus programs.
        kind: 'path-sensitive' (Algorithm 1) or 'classic' (the CG
            baseline the paper compares against in Table II).
        categories: restrict criteria to these families.
        use_control: follow control-dependence edges while slicing
            (False reproduces VulDeePecker's data-only gadgets; only
            meaningful for kind='classic').
        deduplicate: drop exact (tokens, label) duplicates, as the
            paper does after merging corpora.
        keep_gadget: retain the raw gadget object (needed by the
            attention visualization, costs memory otherwise).
        workers: fan the per-case work out over this many processes
            (0 or 1 keeps the serial in-process path).
        cache: a :class:`~repro.core.cache.GadgetCache`, a cache
            directory path, or None.  Hits skip the frontend entirely;
            ignored when ``keep_gadget`` is set because the on-disk
            record format does not persist raw gadget objects.
        telemetry: optional accumulator for stage timings and counters
            (cases parsed/skipped, gadgets, dedup and cache hits, and
            every recovery event).
        case_timeout: per-case wall-clock budget in seconds; a case
            that exceeds it is recorded as a 'timeout' failure (and
            quarantined, when a quarantine is attached) instead of
            hanging the run.  None disables the budget.
        retries: inline re-extraction attempts for cases lost to a
            broken process pool (0 records them as 'worker-crash'
            failures instead).
        quarantine: a :class:`~repro.core.resilience.Quarantine`, a
            JSONL path, or None.  Known-poison cases are skipped
            cheaply; new timeouts/crashes are appended for next time.
        failures: optional list that receives one structured
            :class:`CaseFailure` per case that produced no gadgets.
    """
    if kind not in ("path-sensitive", "classic"):
        raise ValueError(f"unknown gadget kind {kind!r}")
    wanted = None
    if categories is not None:
        wanted = frozenset(_CATEGORY_MAP[c] for c in categories)
    config = _ExtractConfig(kind=kind, wanted=wanted,
                            use_control=use_control,
                            keep_gadget=keep_gadget,
                            case_timeout=case_timeout)
    telemetry = telemetry if telemetry is not None else Telemetry()
    telemetry.count("cases_total", len(cases))
    quarantine = coerce_quarantine(quarantine)

    gadget_cache = None if keep_gadget else _coerce_cache(cache)
    if cache is not None and keep_gadget:
        logger.warning("extract_gadgets: cache disabled because "
                       "keep_gadget=True retains raw gadget objects "
                       "the cache format does not persist")

    per_case: list[list[LabeledGadget] | None] = [None] * len(cases)
    keys: list[str | None] = [None] * len(cases)
    case_failures: list[CaseFailure] = []
    skipped_names: list[str] = []

    pending: list[int] = []
    for index, case in enumerate(cases):
        if quarantine is not None and case in quarantine:
            per_case[index] = []
            telemetry.count("cases_skipped")
            telemetry.count("quarantine_skips")
            telemetry.event("case-skip", case=case.name,
                            reason="quarantined")
            case_failures.append(CaseFailure(
                case.name, "quarantined",
                f"listed in {quarantine.path}", attempts=0,
                quarantined=True))
            skipped_names.append(case.name)
        else:
            pending.append(index)

    if gadget_cache is not None:
        lookup, pending = pending, []
        with telemetry.stage("cache-lookup"):
            for index in lookup:
                key = gadget_cache.key_for(cases[index],
                                           config.cache_token())
                keys[index] = key
                hit = gadget_cache.get(key)
                if hit is None:
                    telemetry.count("cache_misses")
                    pending.append(index)
                else:
                    telemetry.count("cache_hits")
                    per_case[index] = hit

    outcomes: dict[int, _CaseOutcome] = {}
    if workers > 1 and len(pending) > 1:
        with telemetry.stage("extract"):
            outcomes, lost = _pool_extract(cases, pending, config,
                                           workers, telemetry)
            for index in lost:
                case = cases[index]
                if retries > 0:
                    telemetry.count("case_retries")
                    telemetry.event("inline-fallback", case=case.name)
                    outcome = _extract_case(case, config)
                    if outcome[2] is not None:
                        outcome[2].attempts = 2
                    outcomes[index] = outcome
                else:
                    outcomes[index] = (
                        [], {"counters": {"cases_skipped": 1}},
                        CaseFailure(case.name, "worker-crash",
                                    "process pool broke while "
                                    "extracting this chunk"))
    elif pending:
        with telemetry.stage("extract"):
            for index in pending:
                outcomes[index] = _extract_case(cases[index], config)

    for index in sorted(outcomes):
        gadgets, stats, failure = outcomes[index]
        per_case[index] = gadgets
        telemetry.merge_dict(stats)
        case = cases[index]
        if failure is not None:
            skipped_names.append(case.name)
            telemetry.count("skip_" + failure.reason.replace("-", "_"))
            if failure.reason == "timeout":
                telemetry.count("case_timeouts")
            if (quarantine is not None
                    and failure.reason in QUARANTINE_REASONS):
                if quarantine.add(case, failure.reason, failure.detail):
                    telemetry.count("quarantined_cases")
                failure.quarantined = True
            telemetry.event("case-skip", case=case.name,
                            reason=failure.reason,
                            detail=failure.detail)
            logger.warning("extract_gadgets: %s skipped (%s%s)%s",
                           case.name, failure.reason,
                           f": {failure.detail}" if failure.detail
                           else "",
                           "; quarantined" if failure.quarantined
                           else "")
            case_failures.append(failure)
        elif gadget_cache is not None:
            # failed cases are deliberately not cached: parse failures
            # are cheap to re-fail and poison cases belong to the
            # quarantine, so skip diagnostics stay visible on reruns
            with telemetry.stage("cache-store"):
                gadget_cache.put(keys[index], gadgets)

    if failures is not None:
        failures.extend(case_failures)

    results: list[LabeledGadget] = []
    seen: set[tuple[tuple[str, ...], int]] = set()
    dedup_hits = 0
    for case_gadgets in per_case:
        for labeled in case_gadgets or ():
            key = (labeled.tokens, labeled.label)
            if deduplicate:
                if key in seen:
                    dedup_hits += 1
                    continue
                seen.add(key)
            results.append(labeled)
    telemetry.count("dedup_hits", dedup_hits)
    telemetry.count("gadgets_emitted", len(results))
    if skipped_names:
        shown = ", ".join(skipped_names[:5])
        if len(skipped_names) > 5:
            shown += ", ..."
        logger.warning("extract_gadgets: skipped %d/%d case(s): %s",
                       len(skipped_names), len(cases), shown)
    return results


@dataclass
class EncodedDataset:
    """Vocabulary + pretrained embeddings + encoded samples.

    ``id_aliases`` carries the embedding-level min_count trimming: an
    identity id map except rare token ids point at UNK.  Samples keep
    their lossless full-vocabulary ids; models that should treat rare
    constants as UNK attach the alias table to their embedding layer
    (see :meth:`bind_embedding_aliases`).
    """

    samples: list[Sample]
    vocab: Vocabulary
    word2vec: Word2Vec
    gadgets: list[LabeledGadget] = field(default_factory=list)
    id_aliases: np.ndarray | None = None

    @property
    def labels(self) -> np.ndarray:
        return np.array([sample.label for sample in self.samples])

    def subset(self, indices: Sequence[int]) -> list[Sample]:
        return [self.samples[i] for i in indices]

    def bind_embedding_aliases(self, model) -> None:
        """Attach the rare-token alias table to ``model.embedding``."""
        embedding = getattr(model, "embedding", None)
        if embedding is not None and self.id_aliases is not None:
            embedding.id_aliases = self.id_aliases


def encode_gadgets(gadgets: Sequence[LabeledGadget], dim: int = 30,
                   w2v_epochs: int = 2, seed: int = 13,
                   vocab: Vocabulary | None = None,
                   word2vec: Word2Vec | None = None,
                   min_count: int = 2,
                   telemetry: Telemetry | None = None) -> EncodedDataset:
    """Step IV input side: build vocab, pretrain word2vec, encode.

    The vocabulary keeps *every* token so id<->token roundtrips are
    exact.  ``min_count`` trims tokens (mostly rare numeric constants)
    seen fewer times at the *embedding* level, exactly where gensim's
    word2vec (min_count=5 by default) applied it in the paper's
    toolchain: rare tokens train as UNK in word2vec and the returned
    ``id_aliases`` table lets classifier embeddings route them to
    UNK's row too.  That embedding-level rare-constant generalization
    is what lets patterns learned on one instantiation of a CWE
    template transfer to instantiations with different buffer sizes
    and thresholds — without ever losing the literal token.
    """
    if vocab is None:
        vocab = Vocabulary.build([list(g.tokens) for g in gadgets])
    corpora = [vocab.encode(list(g.tokens)) for g in gadgets]
    id_aliases = np.arange(len(vocab), dtype=np.int64)
    if min_count > 1:
        counts: dict[int, int] = {}
        for corpus in corpora:
            for token_id in corpus:
                counts[token_id] = counts.get(token_id, 0) + 1
        for token_id, count in counts.items():
            if token_id >= 2 and count < min_count:
                id_aliases[token_id] = 1
    if word2vec is None:
        word2vec = Word2Vec(vocab, dim=dim, seed=seed)
        word2vec.train(corpora, epochs=w2v_epochs,
                       min_count=min_count, telemetry=telemetry)
    samples = [g.sample(vocab) for g in gadgets]
    return EncodedDataset(samples, vocab, word2vec, list(gadgets),
                          id_aliases=id_aliases)


@dataclass
class TrainReport:
    """Loss trajectory of one training run."""

    losses: list[float] = field(default_factory=list)
    val_f1: list[float] = field(default_factory=list)
    stopped_early: bool = False
    best_epoch: int = -1

    @property
    def final_loss(self) -> float:
        return self.losses[-1] if self.losses else float("nan")


def _train_config_token(params, *, batch_size: int, lr: float,
                        seed: int, n_samples: int, fixed,
                        class_balance: bool) -> str:
    """Fingerprint of everything a resumed run must share with the
    run that wrote the checkpoint (total ``epochs`` is deliberately
    free so a finished run can be extended)."""
    shapes = ",".join(str(tuple(p.data.shape)) for p in params)
    digest = hashlib.sha256(shapes.encode()).hexdigest()[:12]
    return (f"batch={batch_size};lr={lr:g};seed={seed};"
            f"samples={n_samples};fixed={fixed};"
            f"balance={int(class_balance)};params={digest}")


def train_classifier(model: Module, samples: Sequence[Sample], *,
                     epochs: int = 8, batch_size: int = 16,
                     lr: float = 3e-3, seed: int = 0,
                     grad_clip: float = 5.0,
                     class_balance: bool = True,
                     validation: Sequence[Sample] | None = None,
                     patience: int | None = None,
                     telemetry: Telemetry | None = None,
                     checkpoint_dir: str | Path | None = None,
                     checkpoint_every: int = 1,
                     resume: bool = False) -> TrainReport:
    """Train any gadget classifier (fixed- or flexible-length).

    Models advertising ``fixed_length`` get padded/truncated batches
    (Definition 8); flexible models get length-bucketed batches with no
    padding.  With ``class_balance`` the minority class is oversampled
    to a 1:2 ratio, compensating for the gadget-level imbalance the
    paper reports (and chooses not to rebalance at the *data* level —
    we rebalance only the sampling, keeping the data unbalanced).

    With a ``validation`` set and ``patience``, training stops when
    validation F1 has not improved for ``patience`` consecutive epochs
    and the best-epoch weights are restored (early stopping).

    With a ``checkpoint_dir``, an atomic checkpoint (weights, Adam
    moments, RNG state, loss/early-stopping trajectory) is written
    every ``checkpoint_every`` completed epochs; ``resume=True`` picks
    training back up from the last checkpoint and — because the RNG
    and optimizer state are restored exactly — finishes with the same
    weights an uninterrupted run would have produced.  Resuming under
    different hyper-parameters raises ``ValueError`` instead of
    silently diverging.

    ``telemetry`` accumulates the ``train`` / ``train-epoch`` stage
    timings, ``train_batches`` / ``train_samples`` counters, and
    ``checkpoint_writes`` / ``checkpoint_resumes`` recovery counters.
    """
    import time

    rng = np.random.default_rng(seed)
    fixed = getattr(model, "fixed_length", None)
    train_samples = list(samples)
    if class_balance:
        train_samples = _oversample(train_samples, rng)
    params = list(model.parameters())
    optimizer = Adam(params, lr=lr)
    report = TrainReport()
    best_f1 = -1.0
    best_state: dict[str, np.ndarray] | None = None
    stale = 0
    start_epoch = 0

    checkpoint = (TrainingCheckpoint(checkpoint_dir)
                  if checkpoint_dir is not None else None)
    token = _train_config_token(
        params, batch_size=batch_size, lr=lr, seed=seed,
        n_samples=len(samples), fixed=fixed,
        class_balance=class_balance)
    if checkpoint is not None and resume:
        state = checkpoint.load(config_token=token)
        if state is not None:
            model.load_state_dict(state.model_state)
            optimizer.load_state_dict(state.optim_state)
            rng.bit_generator.state = state.rng_state
            if state.model_rng_states and hasattr(model,
                                                  "load_rng_states"):
                model.load_rng_states(state.model_rng_states)
            report.losses = list(state.losses)
            report.val_f1 = list(state.val_f1)
            report.best_epoch = state.best_epoch
            best_f1 = state.best_f1
            best_state = state.best_state
            stale = state.stale
            start_epoch = state.next_epoch
            if telemetry is not None:
                telemetry.count("checkpoint_resumes")
            logger.info("train_classifier: resumed from %s at epoch "
                        "%d", checkpoint.path, start_epoch)

    model.train()
    train_start = time.perf_counter()
    for epoch in range(start_epoch, epochs):
        epoch_start = time.perf_counter()
        epoch_losses: list[float] = []
        epoch_samples = 0
        if fixed is not None:
            batches = fixed_length_batches(train_samples, fixed,
                                           batch_size, rng)
        else:
            batches = bucketed_batches(train_samples, batch_size, rng,
                                       min_length=SCORE_MIN_LENGTH)
        for batch_index, (ids, labels) in enumerate(batches):
            faults.fire("train-batch", f"{epoch}.{batch_index}")
            optimizer.zero_grad()
            logits = model(ids)
            loss = bce_with_logits(logits, labels)
            loss.backward()
            clip_grad_norm(params, grad_clip)
            optimizer.step()
            epoch_losses.append(float(loss.data))
            epoch_samples += len(labels)
        report.losses.append(float(np.mean(epoch_losses))
                             if epoch_losses else float("nan"))
        if telemetry is not None:
            telemetry.add_stage("train-epoch",
                                time.perf_counter() - epoch_start)
            telemetry.count("train_batches", len(epoch_losses))
            telemetry.count("train_samples", epoch_samples)
        should_stop = False
        if validation is not None:
            metrics = evaluate_classifier(model, validation)
            model.train()
            report.val_f1.append(metrics.f1)
            if metrics.f1 > best_f1:
                best_f1 = metrics.f1
                best_state = {key: value.copy() for key, value
                              in model.state_dict().items()}
                report.best_epoch = len(report.losses) - 1
                stale = 0
            else:
                stale += 1
                if patience is not None and stale >= patience:
                    should_stop = True
        if checkpoint is not None and (
                (epoch + 1) % checkpoint_every == 0
                or should_stop or epoch == epochs - 1):
            checkpoint.save(
                epoch=epoch, model=model, optimizer=optimizer,
                rng=rng, losses=report.losses, val_f1=report.val_f1,
                best_epoch=report.best_epoch, best_f1=best_f1,
                stale=stale, best_state=best_state,
                config_token=token)
            if telemetry is not None:
                telemetry.count("checkpoint_writes")
        if should_stop:
            report.stopped_early = True
            break
    if telemetry is not None:
        telemetry.add_stage("train",
                            time.perf_counter() - train_start)
    if best_state is not None:
        model.load_state_dict(best_state)
    model.eval()
    return report


def _oversample(samples: list[Sample],
                rng: np.random.Generator) -> list[Sample]:
    positives = [s for s in samples if s.label == 1]
    negatives = [s for s in samples if s.label == 0]
    if not positives or not negatives:
        return samples
    minority, majority = ((positives, negatives)
                          if len(positives) < len(negatives)
                          else (negatives, positives))
    target = max(len(majority) // 2, len(minority))
    extra = target - len(minority)
    if extra <= 0:
        return samples
    picks = rng.integers(0, len(minority), size=extra)
    return samples + [minority[int(i)] for i in picks]


def predict_proba(model: Module, samples: Sequence[Sample],
                  batch_size: int = 128) -> np.ndarray:
    """Sigmoid scores per sample (order-preserving).

    Inference runs under ``no_grad`` in large length-bucketed batches
    (reusing :func:`bucketed_batches`, whose index channel scatters the
    scores back into corpus order) — no per-length Python grouping, no
    graph bookkeeping.
    """
    fixed = getattr(model, "fixed_length", None)
    scores = np.zeros(len(samples))
    model.eval()
    with no_grad():
        if fixed is not None:
            for start in range(0, len(samples), batch_size):
                chunk = samples[start : start + batch_size]
                ids = np.array(
                    [pad_or_truncate(s.token_ids, fixed) for s in chunk],
                    dtype=np.int64)
                scores[start : start + batch_size] = \
                    model.predict_proba(ids)
        else:
            for ids, _, indices in bucketed_batches(
                    samples, batch_size, min_length=SCORE_MIN_LENGTH,
                    with_indices=True):
                scores[indices] = model.predict_proba(ids)
    return scores


def evaluate_classifier(model: Module, samples: Sequence[Sample],
                        threshold: float = 0.5) -> Metrics:
    """Confusion-matrix metrics at a decision threshold."""
    scores = predict_proba(model, samples)
    predictions = (scores >= threshold).astype(int)
    labels = [sample.label for sample in samples]
    return metrics_from(confusion_from(predictions.tolist(), labels))
