"""Table I — path-sensitive gadget counts by special-token category.

Paper shape: every category yields far more non-vulnerable than
vulnerable gadgets (8-10% vulnerable overall); library/API calls and
pointer usage dominate the totals.
"""

from repro.core.pipeline import extract_gadgets

from conftest import run_once

CATEGORIES = ("FC", "AU", "PU", "AE")
PAPER_ROWS = {
    "FC": (44_683, 549_555), "AU": (44_996, 439_447),
    "PU": (29_424, 542_300), "AE": (3_696, 42_551),
}


def test_table1_gadget_statistics(benchmark, reporter, train_cases):
    def experiment():
        gadgets = extract_gadgets(train_cases, kind="path-sensitive")
        counts = {c: {"vulnerable": 0, "total": 0} for c in CATEGORIES}
        for gadget in gadgets:
            counts[gadget.category]["total"] += 1
            counts[gadget.category]["vulnerable"] += gadget.label
        return counts

    counts = run_once(benchmark, experiment)

    table = reporter("table1_dataset_stats",
                     "Table I — path-sensitive gadgets per category")
    total_vuln = total_all = 0
    for category in CATEGORIES:
        vulnerable = counts[category]["vulnerable"]
        total = counts[category]["total"]
        total_vuln += vulnerable
        total_all += total
        paper_vuln, paper_total = PAPER_ROWS[category]
        table.add(category=category, vulnerable=vulnerable,
                  non_vulnerable=total - vulnerable, total=total,
                  paper_vulnerable=paper_vuln, paper_total=paper_total)
    table.add(category="All", vulnerable=total_vuln,
              non_vulnerable=total_all - total_vuln, total=total_all,
              paper_vulnerable=122_799, paper_total=1_573_853)
    table.save_and_print()

    # Shape: every category produced gadgets; well-populated ones have
    # both classes (tiny categories can collapse under deduplication at
    # small scale); vulnerable gadgets are the minority overall
    # (paper: 7.8%).
    for category in CATEGORIES:
        assert counts[category]["total"] > 0, category
        if counts[category]["total"] >= 10:
            assert 0 < counts[category]["vulnerable"] \
                < counts[category]["total"], category
    assert 0 < total_vuln < total_all
    assert total_vuln / total_all < 0.5
