#!/usr/bin/env python3
"""Benchmark the streaming stage engine against barrier execution.

Runs the same fetch -> extract -> score pipeline over an identical
corpus with streaming prefetch boundaries on and off, and writes the
measurements as machine-readable JSON to
``benchmarks/results/BENCH_engine.json``::

    PYTHONPATH=src python scripts/bench_engine.py          # full run
    PYTHONPATH=src python scripts/bench_engine.py --smoke  # CI-sized

Three measurements per mode (barrier = ``Engine(streaming=False)``,
chunks flow strictly serially; streaming = prefetch threads at every
stage boundary):

* ``io_bound`` — the headline overlap number.  A ``FetchStage`` in
  front of extraction injects ``--io-latency-ms`` of per-case corpus
  delivery latency (modelling the dataset fetch a production corpus
  pays to disk/NFS/object storage; the synthetic SARD generator is
  memory-resident, so the wait is simulated — the value and mechanism
  are recorded in the JSON).  The barrier pipeline pays fetch, then
  extract, then score per chunk serially; the streaming engine hides
  the fetch wait behind extract+score of earlier chunks.  This
  isolates exactly what the prefetch boundary buys and works on any
  machine, including single-CPU CI containers where compute cannot
  physically overlap compute.
* ``compute`` — the same pipeline with zero injected latency: raw
  extract -> score.  On a multi-core machine pool-backed extraction
  overlaps numpy scoring and this ratio is the honest end-to-end win;
  on a single CPU it sits near 1.0x (both stages need the same core)
  and is reported, not gated.
* ``first_result`` — wall-clock until the first scored chunk is
  available, streaming engine vs the full-materialize barrier
  semantics of the pre-engine pipeline (extract the entire corpus,
  then score).  Pipelining wins this even on one CPU: the first
  verdict no longer waits for the whole corpus to extract.

The acceptance target is overlap >= 1.2x on the ``io_bound``
measurement with byte-identical outputs (same gadgets, bit-equal
scores) between the two modes.  ``--smoke`` shrinks the corpus so CI
finishes in seconds and records ``"mode": "smoke"``; CI asserts only
the JSON contract, never the ratios (CI machines are too noisy).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

import numpy as np  # noqa: E402

from repro.core.encode import encode_gadgets  # noqa: E402
from repro.core.engine import (Engine, ExtractStage,  # noqa: E402
                               RunContext, ScoreStage, Stage)
from repro.core.extract import extract_gadgets  # noqa: E402
from repro.datasets.sard import generate_sard_corpus  # noqa: E402
from repro.models.sevuldet import SEVulDetNet  # noqa: E402

TARGET_OVERLAP = 1.2


class FetchStage(Stage):
    """Simulated corpus delivery: ``latency`` seconds per case.

    Stands in for the disk/NFS/object-storage read a real corpus pays
    per file.  The wait releases the GIL (like blocking I/O does), so
    a streaming engine hides it behind downstream compute; the barrier
    pipeline pays it serially.
    """

    name = "fetch"
    streaming = True

    def __init__(self, latency: float):
        self.latency = latency

    def process(self, chunk, ctx):
        if self.latency > 0.0:
            time.sleep(self.latency * len(chunk))
        return chunk


def build_scorer(train_cases, dim: int, channels: int):
    """A trained-shape model + vocab to score with (weights random:
    the benchmark measures wall-clock, not accuracy)."""
    gadgets = extract_gadgets(train_cases)
    dataset = encode_gadgets(gadgets, dim=dim, w2v_epochs=0, seed=13)
    model = SEVulDetNet(len(dataset.vocab), dim=dim,
                        channels=channels,
                        pretrained=dataset.word2vec.vectors, seed=3)
    dataset.bind_embedding_aliases(model)
    return model, dataset.vocab


def run_pipeline(cases, model, vocab, *, streaming: bool,
                 latency: float, workers: int, chunk_size: int,
                 batch_size: int):
    """One pass; returns (seconds, first_result_seconds, gadgets,
    scores)."""
    ctx = RunContext.create(workers=workers)
    stages = [ExtractStage(),
              ScoreStage(model, vocab, batch_size=batch_size)]
    if latency > 0.0:
        stages.insert(0, FetchStage(latency))
    engine = Engine(*stages, ctx=ctx, chunk_size=chunk_size,
                    streaming=streaming)
    gadgets, parts = [], []
    first = None
    start = time.perf_counter()
    for chunk_gadgets, chunk_scores in engine.stream(cases):
        if first is None:
            first = time.perf_counter() - start
        gadgets.extend(chunk_gadgets)
        parts.append(chunk_scores)
    elapsed = time.perf_counter() - start
    scores = np.concatenate(parts) if parts else np.array([])
    return elapsed, first, gadgets, scores


def bench_pair(cases, model, vocab, *, latency: float, workers: int,
               chunk_size: int, batch_size: int, repeats: int):
    """Time barrier vs streaming; keep each mode's best wall-clock."""
    out = {}
    outputs = {}
    for key, streaming in (("barrier", False), ("streaming", True)):
        best = None
        times = []
        for _ in range(repeats):
            result = run_pipeline(
                cases, model, vocab, streaming=streaming,
                latency=latency, workers=workers,
                chunk_size=chunk_size, batch_size=batch_size)
            times.append(round(result[0], 4))
            if best is None or result[0] < best[0]:
                best = result
        seconds, first, gadgets, scores = best
        out[key] = {
            "seconds": round(seconds, 4),
            "first_result_seconds": round(first, 4),
            "all_runs_seconds": times,
            "cases_per_sec": round(len(cases) / seconds, 2),
        }
        outputs[key] = (gadgets, scores)
    identical = (outputs["barrier"][0] == outputs["streaming"][0]
                 and np.array_equal(outputs["barrier"][1],
                                    outputs["streaming"][1]))
    ratio = round(out["barrier"]["seconds"]
                  / max(out["streaming"]["seconds"], 1e-9), 2)
    return out, ratio, identical


def bench_first_result(cases, model, vocab, *, workers: int,
                       chunk_size: int, batch_size: int):
    """Time-to-first-verdict: streaming vs full-materialize.

    The pre-engine pipeline extracted the *entire* corpus before
    scoring anything; the streaming engine scores chunk 1 as soon as
    it is extracted.
    """
    start = time.perf_counter()
    gadgets = extract_gadgets(cases, workers=workers)
    first_bucket = gadgets[:chunk_size]
    from repro.core.score import predict_proba
    predict_proba(model, [g.sample(vocab) for g in first_bucket],
                  batch_size=batch_size)
    materialized = time.perf_counter() - start

    _, streamed_first, _, _ = run_pipeline(
        cases, model, vocab, streaming=True, latency=0.0,
        workers=workers, chunk_size=chunk_size,
        batch_size=batch_size)
    return {
        "materialize_seconds": round(materialized, 4),
        "streaming_seconds": round(streamed_first, 4),
        "speedup": round(materialized / max(streamed_first, 1e-9), 2),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run: tiny corpus, no perf gate")
    parser.add_argument("--cases", type=int, default=None,
                        help="corpus programs (default 160, smoke 16)")
    parser.add_argument("--workers", type=int, default=2,
                        help="extraction processes (default 2)")
    parser.add_argument("--chunk-size", type=int, default=None,
                        help="cases per engine chunk "
                             "(default 16, smoke 4)")
    parser.add_argument("--batch-size", type=int, default=64)
    parser.add_argument("--io-latency-ms", type=float, default=10.0,
                        help="simulated per-case corpus delivery "
                             "latency for the io_bound measurement "
                             "(default 10ms)")
    parser.add_argument("--repeats", type=int, default=None,
                        help="timed passes per mode, best kept "
                             "(default 3, smoke 1)")
    parser.add_argument("--output", type=Path,
                        default=ROOT / "benchmarks" / "results"
                        / "BENCH_engine.json")
    args = parser.parse_args(argv)

    n_cases = args.cases or (16 if args.smoke else 160)
    chunk_size = args.chunk_size or (4 if args.smoke else 16)
    repeats = args.repeats or (1 if args.smoke else 3)
    latency = args.io_latency_ms / 1e3
    # full mode scores with the paper's filter count (512): the
    # overlap claim is about production-shaped work, where extraction
    # and scoring have comparable cost
    dim, channels = (8, 8) if args.smoke else (30, 512)
    cpus = os.cpu_count() or 1

    cases = generate_sard_corpus(n_cases, seed=99)
    model, vocab = build_scorer(generate_sard_corpus(40, seed=31),
                                dim, channels)
    print(f"fetch+extract+score over {n_cases} cases "
          f"({cpus} cpu(s), {args.workers} extraction workers, "
          f"chunks of {chunk_size}, best of {repeats})")

    io_bound, io_ratio, io_identical = bench_pair(
        cases, model, vocab, latency=latency, workers=args.workers,
        chunk_size=chunk_size, batch_size=args.batch_size,
        repeats=repeats)
    print(f"io_bound ({args.io_latency_ms}ms/case fetch): barrier "
          f"{io_bound['barrier']['seconds']}s, streaming "
          f"{io_bound['streaming']['seconds']}s -> {io_ratio}x")

    compute, compute_ratio, compute_identical = bench_pair(
        cases, model, vocab, latency=0.0, workers=args.workers,
        chunk_size=chunk_size, batch_size=args.batch_size,
        repeats=repeats)
    print(f"compute (no injected latency): barrier "
          f"{compute['barrier']['seconds']}s, streaming "
          f"{compute['streaming']['seconds']}s -> {compute_ratio}x"
          + ("  [single CPU: compute cannot overlap compute]"
             if cpus < 2 else ""))

    first = bench_first_result(
        cases, model, vocab, workers=args.workers,
        chunk_size=chunk_size, batch_size=args.batch_size)
    print(f"first result: full-materialize "
          f"{first['materialize_seconds']}s, streaming "
          f"{first['streaming_seconds']}s "
          f"-> {first['speedup']}x")

    identical = io_identical and compute_identical
    overlap = io_ratio
    print(f"overlap: {overlap}x (target >= {TARGET_OVERLAP}x); "
          f"identical outputs: {identical}")

    report = {
        "benchmark": "engine",
        "mode": "smoke" if args.smoke else "full",
        "dtype": os.environ.get("REPRO_DTYPE", "float32"),
        "cpus": cpus,
        "corpus": {"cases": n_cases},
        "workers": args.workers,
        "chunk_size": chunk_size,
        "batch_size": args.batch_size,
        "repeats": repeats,
        "io_latency_ms": args.io_latency_ms,
        "io_latency_note": (
            "io_bound injects simulated per-case corpus-fetch latency "
            "(FetchStage sleep); it isolates the prefetch-boundary "
            "overlap on machines where compute cannot overlap compute"),
        "io_bound": dict(io_bound, ratio=io_ratio),
        "compute": dict(compute, ratio=compute_ratio),
        "first_result": first,
        "overlap": overlap,
        "identical": identical,
        "targets": {"overlap": TARGET_OVERLAP},
        "targets_met": {
            "overlap": overlap >= TARGET_OVERLAP,
            "identical": identical,
        },
    }
    args.output.parent.mkdir(parents=True, exist_ok=True)
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.output}")

    if not identical:
        print("error: streaming outputs diverged from barrier",
              file=sys.stderr)
        return 1
    if not args.smoke and overlap < TARGET_OVERLAP:
        print("warning: overlap target not met", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
