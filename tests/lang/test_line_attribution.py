"""Property tests: line -> function attribution vs lexer spans.

``AnalyzedProgram.functions_of_line`` is derived from parser nodes;
``repro.core.fingerprint.lexer_function_spans`` re-derives the same
spans from the raw token stream with no parser involved.  Agreement
between the two independent derivations — on every line of every
generated program, including shared boundary lines like
``} int next(void) {`` — is what lets the incremental-scanning layer
trust hunk-to-function mapping.
"""

import random

from repro.core.fingerprint import lexer_function_spans
from repro.lang.callgraph import analyze

BOUNDARY_SOURCE = """\
int first(int n) {
    return n + 1;
} int second(int n) {
    return n + 2;
}
"""


def _random_program(rng: random.Random) -> str:
    """A small C file with randomized bodies, spacing, and optional
    shared boundary lines between adjacent functions."""
    parts = []
    names = [f"fn{i}" for i in range(rng.randint(2, 5))]
    for index, name in enumerate(names):
        body_lines = []
        for j in range(rng.randint(1, 4)):
            body_lines.append(f"    int v{j} = {rng.randint(0, 9)};")
        if index + 1 < len(names) and rng.random() < 0.5:
            callee = names[index + 1]
            body_lines.append(f"    return {callee}({index});")
        else:
            body_lines.append(f"    return {index};")
        body = "\n".join(body_lines)
        text = f"int {name}(int n) {{\n{body}\n}}"
        parts.append(text)
    glue = []
    for index, text in enumerate(parts):
        if index and rng.random() < 0.3:
            # shared boundary line: previous closing brace and this
            # signature on one line
            glue[-1] = glue[-1] + " " + text
        else:
            glue.append(text)
    blanks = "\n" * rng.randint(1, 3)
    # definitions are bottom-up so forward calls resolve textually
    return blanks.join(reversed(glue)) + "\n"


class TestAgainstLexerSpans:
    def test_randomized_programs_agree_on_every_line(self):
        rng = random.Random(1337)
        for _ in range(25):
            source = _random_program(rng)
            program = analyze(source)
            spans = lexer_function_spans(source)
            total_lines = source.count("\n") + 1
            for line in range(1, total_lines + 1):
                expected = [s.name for s in spans
                            if s.covers_line(line)]
                assert program.functions_of_line(line) == expected, \
                    f"line {line} of:\n{source}"

    def test_single_winner_is_last_starter(self):
        rng = random.Random(7331)
        for _ in range(25):
            source = _random_program(rng)
            program = analyze(source)
            spans = lexer_function_spans(source)
            total_lines = source.count("\n") + 1
            for line in range(1, total_lines + 1):
                covering = [s.name for s in spans
                            if s.covers_line(line)]
                expected = covering[-1] if covering else None
                assert program.function_of_line(line) == expected


class TestSharedBoundaryLine:
    def test_both_functions_own_the_boundary(self):
        program = analyze(BOUNDARY_SOURCE)
        assert program.functions_of_line(3) == ["first", "second"]

    def test_starter_wins_single_attribution(self):
        # line 3 is first's closing brace AND second's signature; the
        # code on it after the brace belongs to second
        program = analyze(BOUNDARY_SOURCE)
        assert program.function_of_line(3) == "second"

    def test_interior_lines_unambiguous(self):
        program = analyze(BOUNDARY_SOURCE)
        assert program.functions_of_line(2) == ["first"]
        assert program.functions_of_line(4) == ["second"]
        assert program.functions_of_line(99) == []


class TestLazyEagerEquivalence:
    def test_lazy_attribution_matches_eager(self):
        rng = random.Random(4242)
        for _ in range(10):
            source = _random_program(rng)
            eager = analyze(source)
            lazy = analyze(source, lazy=True)
            total_lines = source.count("\n") + 1
            for line in range(1, total_lines + 1):
                assert lazy.functions_of_line(line) == \
                    eager.functions_of_line(line)

    def test_lazy_call_graph_matches_eager(self):
        rng = random.Random(2424)
        for _ in range(10):
            source = _random_program(rng)
            eager = analyze(source)
            lazy = analyze(source, lazy=True)
            for fn in eager.unit.functions:
                assert sorted(lazy.call_graph.callees(fn.name)) == \
                    sorted(eager.call_graph.callees(fn.name))
                assert sorted(lazy.call_graph.callers(fn.name)) == \
                    sorted(eager.call_graph.callers(fn.name))
