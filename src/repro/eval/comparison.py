"""Framework-comparison harness (Tables II, III, V, VI and Fig 5).

Encodes each evaluated system as a :class:`FrameworkSpec` — gadget
kind, slicing configuration, network builder, hyper-parameters — and
provides the train/evaluate drivers the benchmark suite calls.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Protocol, Sequence

import numpy as np

from ..core.config import Scale
from ..core.encode import EncodedDataset, encode_gadgets
from ..core.extract import LabeledGadget, extract_gadgets
from ..core.score import evaluate_classifier
from ..core.train import train_classifier
from ..datasets.manifest import TestCase
from ..models.bgru import BGRUNet
from ..models.blstm import BLSTMNet
from ..models.cnn_variants import cnn_multi_att, cnn_token_att, plain_cnn
from ..models.sevuldet import SEVulDetNet
from .metrics import Metrics, confusion_from, metrics_from

__all__ = ["FrameworkSpec", "FRAMEWORKS", "train_and_evaluate",
           "evaluate_static_tool", "StaticTool"]


class StaticTool(Protocol):
    """Protocol the classical scanners implement."""

    name: str

    def flags(self, source: str) -> bool: ...


@dataclass(frozen=True)
class FrameworkSpec:
    """One deep-learning detection framework's configuration."""

    name: str
    gadget_kind: str           # 'classic' | 'path-sensitive'
    use_control: bool
    builder: Callable[..., object]
    categories: tuple[str, ...] | None = None

    def build_model(self, vocab_size: int, scale: Scale,
                    pretrained: np.ndarray | None,
                    seed: int) -> object:
        if self.builder in (BLSTMNet, BGRUNet):
            return self.builder(vocab_size, dim=scale.dim,
                                hidden=scale.hidden,
                                time_steps=scale.time_steps,
                                pretrained=pretrained, seed=seed)
        return self.builder(vocab_size, dim=scale.dim,
                            channels=scale.channels,
                            pretrained=pretrained, seed=seed)


def _sevuldet_builder(vocab_size: int, dim: int, channels: int,
                      pretrained, seed: int) -> SEVulDetNet:
    return SEVulDetNet(vocab_size, dim=dim, channels=channels,
                       pretrained=pretrained, seed=seed)


#: The evaluated systems.  VulDeePecker: data-only classic gadgets into
#: a BLSTM, FC category only.  SySeVR: data+control classic gadgets
#: into a BGRU, all categories.  SEVulDet: path-sensitive gadgets into
#: the CNN/SPP/attention network.
FRAMEWORKS: dict[str, FrameworkSpec] = {
    "VulDeePecker": FrameworkSpec("VulDeePecker", "classic", False,
                                  BLSTMNet, categories=("FC",)),
    "SySeVR": FrameworkSpec("SySeVR", "classic", True, BGRUNet),
    "SEVulDet": FrameworkSpec("SEVulDet", "path-sensitive", True,
                              _sevuldet_builder),
    # Ablation networks (Table II/III) — same data path as SEVulDet.
    "BLSTM": FrameworkSpec("BLSTM", "classic", True, BLSTMNet),
    "BGRU": FrameworkSpec("BGRU", "classic", True, BGRUNet),
    "CNN": FrameworkSpec("CNN", "path-sensitive", True, plain_cnn),
    "CNN-TokenATT": FrameworkSpec("CNN-TokenATT", "path-sensitive",
                                  True, cnn_token_att),
    "CNN-MultiATT": FrameworkSpec("CNN-MultiATT", "path-sensitive",
                                  True, cnn_multi_att),
}


def train_and_evaluate(
    spec: FrameworkSpec,
    train_cases: Sequence[TestCase],
    test_cases: Sequence[TestCase],
    scale: Scale,
    *,
    seed: int = 7,
    categories: tuple[str, ...] | None = None,
    gadget_kind: str | None = None,
    threshold: float = 0.5,
) -> tuple[Metrics, EncodedDataset]:
    """Full pipeline for one framework on a train/test corpus split.

    Args:
        spec: the framework configuration.
        train_cases / test_cases: disjoint corpora.
        scale: sizing preset.
        categories: overrides the spec's category restriction.
        gadget_kind: overrides the spec's gadget kind (used by the RQ1
            CG vs PS-CG sweep, which crosses networks with data kinds).
        threshold: decision threshold on the sigmoid output.

    Returns:
        (metrics on the test gadgets, the training EncodedDataset).
    """
    kind = gadget_kind or spec.gadget_kind
    wanted = categories if categories is not None else spec.categories
    train_gadgets = extract_gadgets(train_cases, kind=kind,
                                    categories=wanted,
                                    use_control=spec.use_control)
    test_gadgets = extract_gadgets(test_cases, kind=kind,
                                   categories=wanted,
                                   use_control=spec.use_control)
    if not train_gadgets or not test_gadgets:
        raise ValueError(f"no gadgets extracted for {spec.name}")
    dataset = encode_gadgets(train_gadgets, dim=scale.dim,
                             w2v_epochs=scale.w2v_epochs, seed=seed)
    model = spec.build_model(len(dataset.vocab), scale,
                             dataset.word2vec.vectors, seed)
    dataset.bind_embedding_aliases(model)
    # Fixed-length models batch at 64 (VulDeePecker's Table IV value);
    # it also amortises the per-timestep recurrence loop, which
    # dominates BRNN training cost on CPU.
    if getattr(model, "fixed_length", None):
        batch_size = 64
    else:
        batch_size = scale.batch_size
    train_classifier(model, dataset.samples, epochs=scale.epochs,
                     batch_size=batch_size,
                     lr=scale.learning_rate, seed=seed)
    test_samples = [g.sample(dataset.vocab) for g in test_gadgets]
    metrics = evaluate_classifier(model, test_samples,
                                  threshold=threshold)
    return metrics, dataset


def evaluate_static_tool(tool: StaticTool,
                         cases: Sequence[TestCase]) -> Metrics:
    """Program-level verdicts of a classical scanner vs ground truth."""
    predictions = [1 if tool.flags(case.source) else 0 for case in cases]
    labels = [1 if case.vulnerable else 0 for case in cases]
    return metrics_from(confusion_from(predictions, labels))
