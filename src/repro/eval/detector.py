"""Detector adapters: one protocol over every evaluated system.

The repo historically ran deep-learning frameworks through
:func:`repro.eval.comparison.train_and_evaluate` and classical
scanners through :func:`~repro.eval.comparison.evaluate_static_tool` —
two disjoint code paths re-wired by hand in every table benchmark.
This module closes that gap: every system is a :class:`Detector`
(``name`` / optional ``fit`` / ``predict``) and the matrix runner
(:mod:`repro.eval.matrix`) treats them uniformly.

Three adapter families cover the existing systems:

* :class:`FrameworkDetector` — any :data:`FRAMEWORKS` entry, routed
  through the stage engine (:class:`~repro.core.engine.Engine`) with a
  shared :class:`~repro.core.engine.RunContext`, so the gadget caches,
  quarantine, and telemetry are reused across matrix cells.  The
  training and scoring path is pinned to produce metrics *identical*
  to ``train_and_evaluate`` on the same seeds (engine chunking is
  byte-identical to the serial one-shot path, see tests).
* :class:`StaticToolDetector` — flawfinder/RATS/checkmarx/vuddy.
  Verdicts route through the context's telemetry (per-tool wall time
  and cases/sec), which the old ``evaluate_static_tool`` never did.
* :class:`FuzzDetector` — the AFL-style fuzzer, bounded per case.

Every adapter returns a :class:`Prediction` carrying *per-case*
verdicts (aligned with the input cases — the common denominator the
paired bootstrap compares across detector families) plus, for gadget
models, the per-gadget scores/labels whose metrics match the
historical gadget-level tables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, Sequence, runtime_checkable

from ..baselines import AFLFuzzer
from ..core.config import Scale, current_scale
from ..core.engine import (EncodeStage, Engine, ExtractStage, RunContext,
                           TrainStage)
from ..core.extract import GadgetDeduplicator, LabeledGadget
from ..core.score import predict_proba
from ..datasets.adapters import derive_seed
from ..datasets.manifest import TestCase
from ..models.bgru import BGRUNet
from ..models.blstm import BLSTMNet
from .comparison import FRAMEWORKS, FrameworkSpec, StaticTool
from .metrics import Metrics, confusion_from, metrics_from

__all__ = ["Detector", "Prediction", "FrameworkDetector",
           "StaticToolDetector", "FuzzDetector", "build_detector",
           "default_detectors"]


@dataclass
class Prediction:
    """One detector's output over one test corpus.

    Attributes:
        detector: the producing detector's name.
        verdicts: per-case 0/1 decisions, aligned with the input cases
            — the cross-family common denominator (bootstrap
            significance compares these).
        scores: per-case scores behind the verdicts (max gadget score
            for gadget models; 0/1 for binary tools).
        basis: which granularity :meth:`metrics` reports — ``gadget``
            for deep models (matching the paper's gadget-level tables)
            or ``case`` for program-level tools.
        gadget_scores / gadget_labels: the deduplicated test-gadget
            scores and ground truth (gadget basis only).
        threshold: decision threshold the verdicts used.
    """

    detector: str
    verdicts: list[int]
    scores: list[float]
    basis: str = "case"
    gadget_scores: list[float] | None = None
    gadget_labels: list[int] | None = None
    threshold: float = 0.5

    def metrics(self, labels: Sequence[int]) -> Metrics:
        """Metrics at the prediction's native granularity.

        ``labels`` are the per-case ground truth; gadget-basis
        predictions ignore them in favour of their own gadget labels
        (that is what makes the numbers comparable with the historical
        ``train_and_evaluate`` tables).
        """
        if self.basis == "gadget":
            assert self.gadget_scores is not None
            assert self.gadget_labels is not None
            decisions = [1 if score >= self.threshold else 0
                         for score in self.gadget_scores]
            return metrics_from(
                confusion_from(decisions, list(self.gadget_labels)))
        return metrics_from(
            confusion_from(list(self.verdicts), list(labels)))

    def case_metrics(self, labels: Sequence[int]) -> Metrics:
        """Metrics over the per-case verdicts (every basis has these)."""
        return metrics_from(
            confusion_from(list(self.verdicts), list(labels)))


@runtime_checkable
class Detector(Protocol):
    """What the matrix needs from an evaluated system.

    ``fit`` is optional — the matrix runner calls it only when the
    adapter defines it (classical scanners are training-free, VUDDY
    consumes only the vulnerable half of the train split).
    """

    name: str

    def predict(self, cases: Sequence[TestCase],
                ctx: RunContext) -> Prediction:
        """Score/decide every case; aligned with the input order."""
        ...


class FrameworkDetector:
    """A :data:`FRAMEWORKS` entry behind the :class:`Detector` protocol.

    Fitting composes the stage engine exactly the way
    ``train_and_evaluate`` composes the serial calls — same extraction
    configuration, same ``encode_gadgets`` parameters, same builder and
    alias binding, same batch-size policy — so the resulting weights
    and test metrics are equal on equal seeds.  Prediction extracts the
    test corpus per case (so verdicts can be attributed to programs),
    re-applies corpus-order deduplication to recover the one-shot
    gadget list, and scores that list once; each case's score is the
    max over its gadgets' scores, via a tokens-keyed map so duplicate
    gadgets share their survivor's score by construction.
    """

    def __init__(self, spec: FrameworkSpec | str,
                 scale: Scale | None = None, *, seed: int = 7,
                 threshold: float = 0.5,
                 categories: tuple[str, ...] | None = None,
                 use_spec_categories: bool = True,
                 gadget_kind: str | None = None,
                 name: str | None = None):
        self.spec = FRAMEWORKS[spec] if isinstance(spec, str) else spec
        self.scale = scale if scale is not None else current_scale()
        self.seed = seed
        self.threshold = threshold
        self.kind = gadget_kind or self.spec.gadget_kind
        if categories is not None:
            self.categories: tuple[str, ...] | None = categories
        elif use_spec_categories:
            self.categories = self.spec.categories
        else:
            self.categories = None
        self.name = name if name is not None else self.spec.name
        self._model = None
        self._vocab = None

    def _extract_stage(self, *, per_case: bool = False) -> ExtractStage:
        return ExtractStage(self.kind, self.categories,
                            use_control=self.spec.use_control,
                            per_case=per_case)

    def fit(self, cases: Sequence[TestCase], ctx: RunContext) -> None:
        spec, scale, seed = self.spec, self.scale, self.seed

        def build(dataset):
            model = spec.build_model(len(dataset.vocab), scale,
                                     dataset.word2vec.vectors, seed)
            dataset.bind_embedding_aliases(model)
            return model

        # Fixed-length BRNNs batch at 64 (train_and_evaluate's policy);
        # decided from the builder because the stage needs the batch
        # size before the model exists.
        batch_size = (64 if spec.builder in (BLSTMNet, BGRUNet)
                      else scale.batch_size)
        engine = Engine(
            self._extract_stage(),
            EncodeStage(dim=scale.dim, w2v_epochs=scale.w2v_epochs,
                        seed=seed),
            TrainStage(build, epochs=scale.epochs,
                       batch_size=batch_size, lr=scale.learning_rate,
                       seed=seed),
            ctx=ctx)
        result = engine.run(cases)
        self._model = result.model
        self._vocab = result.dataset.vocab

    def predict(self, cases: Sequence[TestCase],
                ctx: RunContext) -> Prediction:
        if self._model is None or self._vocab is None:
            raise RuntimeError(
                f"{self.name}: predict() before fit()")
        engine = Engine(self._extract_stage(per_case=True), ctx=ctx)
        per_case = [result for chunk in engine.run(cases)
                    for result in chunk]
        # Corpus-order dedup over the per-case stream reconstructs the
        # one-shot extract_gadgets() list exactly, so gadget metrics
        # match the historical serial path byte for byte.
        deduper = GadgetDeduplicator(enabled=True)
        deduped: list[LabeledGadget] = []
        for result in per_case:
            deduped.extend(deduper.filter(result.gadgets))
        gadget_scores: list[float] = []
        score_of: dict[tuple, float] = {}
        if deduped:
            samples = [g.sample(self._vocab) for g in deduped]
            raw = predict_proba(self._model, samples)
            gadget_scores = [float(s) for s in raw]
            score_of = {(g.tokens, g.label): score
                        for g, score in zip(deduped, gadget_scores)}
        verdicts: list[int] = []
        scores: list[float] = []
        for result in per_case:
            case_score = max(
                (score_of[(g.tokens, g.label)] for g in result.gadgets),
                default=0.0)
            scores.append(case_score)
            verdicts.append(1 if case_score >= self.threshold else 0)
        return Prediction(
            detector=self.name, verdicts=verdicts, scores=scores,
            basis="gadget", gadget_scores=gadget_scores,
            gadget_labels=[g.label for g in deduped],
            threshold=self.threshold)


class StaticToolDetector:
    """A classical scanner behind the :class:`Detector` protocol.

    Predictions run inside a telemetry stage (``tool:<name>``) and
    bump a per-tool case counter, so matrix runs can report each
    tool's wall time and cases/sec — ``evaluate_static_tool`` was
    invisible to :class:`~repro.core.telemetry.Telemetry`.
    """

    def __init__(self, tool: StaticTool, name: str | None = None):
        self.tool = tool
        self.name = name if name is not None else tool.name

    def fit(self, cases: Sequence[TestCase], ctx: RunContext) -> None:
        """Feed clone-hash tools their vulnerable reference corpus."""
        add = getattr(self.tool, "add_vulnerable", None)
        if add is None:
            return
        with ctx.telemetry.stage(f"tool_fit:{self.name}"):
            for case in cases:
                if case.vulnerable:
                    add(case.source)

    def predict(self, cases: Sequence[TestCase],
                ctx: RunContext) -> Prediction:
        verdicts: list[int] = []
        with ctx.telemetry.stage(f"tool:{self.name}"):
            for case in cases:
                verdicts.append(1 if self.tool.flags(case.source) else 0)
                ctx.telemetry.count(f"tool_cases:{self.name}")
        return Prediction(
            detector=self.name, verdicts=verdicts,
            scores=[float(v) for v in verdicts], basis="case")


class FuzzDetector:
    """Coverage-guided fuzzing behind the :class:`Detector` protocol.

    Each case gets a bounded fuzzing campaign; a case whose source the
    fuzzer's frontend cannot parse counts as a clean (0) verdict and a
    ``fuzz_unparsed`` telemetry tick rather than an error — the matrix
    treats detector limitations as misses, not crashes.
    """

    def __init__(self, *, max_execs: int = 150, max_steps: int = 2500,
                 seed: int = 0, name: str = "AFL"):
        self.max_execs = max_execs
        self.max_steps = max_steps
        self.seed = seed
        self.name = name

    def predict(self, cases: Sequence[TestCase],
                ctx: RunContext) -> Prediction:
        verdicts: list[int] = []
        with ctx.telemetry.stage(f"tool:{self.name}"):
            for case in cases:
                try:
                    fuzzer = AFLFuzzer(
                        case.source, max_execs=self.max_execs,
                        max_steps=self.max_steps,
                        seed=derive_seed(self.seed, case.name))
                    report = fuzzer.run()
                    found = bool(report.found_anything)
                except Exception:
                    ctx.telemetry.count("fuzz_unparsed")
                    found = False
                verdicts.append(1 if found else 0)
                ctx.telemetry.count(f"tool_cases:{self.name}")
        return Prediction(
            detector=self.name, verdicts=verdicts,
            scores=[float(v) for v in verdicts], basis="case")


def _static_tools() -> dict[str, object]:
    from ..baselines import (CheckmarxScanner, FlawfinderScanner,
                             RatsScanner, VuddyScanner)

    return {
        "flawfinder": FlawfinderScanner,
        "rats": RatsScanner,
        "checkmarx": CheckmarxScanner,
        "vuddy": VuddyScanner,
    }


def build_detector(name: str, *, scale: Scale | None = None,
                   seed: int = 7, threshold: float = 0.5,
                   fuzz_execs: int = 150,
                   fuzz_steps: int = 2500) -> Detector:
    """Construct a detector by registry name.

    Framework names (``SEVulDet``, ``VulDeePecker``, ``SySeVR``,
    ``BLSTM``, ...) match :data:`FRAMEWORKS` case-insensitively;
    static tools are ``flawfinder``/``rats``/``checkmarx``/``vuddy``;
    the fuzzer is ``afl`` (alias ``fuzzer``).
    """
    key = name.lower()
    for framework_name, spec in FRAMEWORKS.items():
        if framework_name.lower() == key:
            return FrameworkDetector(spec, scale, seed=seed,
                                     threshold=threshold)
    tools = _static_tools()
    if key in tools:
        return StaticToolDetector(tools[key]())
    if key in ("afl", "fuzzer"):
        return FuzzDetector(max_execs=fuzz_execs, max_steps=fuzz_steps,
                            seed=seed)
    known = sorted([*FRAMEWORKS, *tools, "afl"], key=str.lower)
    raise ValueError(f"unknown detector {name!r}; choose from {known}")


#: The acceptance grid: SEVulDet, one BRNN framework, four static
#: tools, and the fuzzer.
DEFAULT_DETECTOR_NAMES = ("SEVulDet", "SySeVR", "flawfinder", "rats",
                         "checkmarx", "vuddy", "afl")


def default_detectors(*, scale: Scale | None = None, seed: int = 7
                      ) -> list[Detector]:
    """Fresh instances of the standard detector lineup."""
    return [build_detector(name, scale=scale, seed=seed)
            for name in DEFAULT_DETECTOR_NAMES]
