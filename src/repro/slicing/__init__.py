"""Gadget machinery: special tokens, slicing, classic and
path-sensitive gadget assembly, normalization, labeling."""

from .special_tokens import SlicingCriterion, TokenCategory, find_special_tokens
from .slicer import Slice, compute_slice
from .gadget import CodeGadget, GadgetLine, assemble_classic_gadget, classic_gadget
from .path_sensitive import (ControlRange, assemble_path_sensitive_gadget,
                             brace_ranges, extract_control_ranges,
                             path_sensitive_gadget)
from .normalize import NormalizedGadget, Normalizer, normalize_gadget
from .labeling import MislabelAuditor, VulnerabilityManifest, label_gadget, label_gadgets

__all__ = [
    "SlicingCriterion", "TokenCategory", "find_special_tokens",
    "Slice", "compute_slice",
    "CodeGadget", "GadgetLine", "assemble_classic_gadget", "classic_gadget",
    "ControlRange", "assemble_path_sensitive_gadget", "brace_ranges",
    "extract_control_ranges", "path_sensitive_gadget",
    "NormalizedGadget", "Normalizer", "normalize_gadget",
    "MislabelAuditor", "VulnerabilityManifest", "label_gadget", "label_gadgets",
]
