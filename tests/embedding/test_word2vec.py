"""Tests for the skip-gram word2vec trainer."""

import numpy as np
import pytest

from repro.embedding.vocab import Vocabulary
from repro.embedding.word2vec import Word2Vec


def make_corpus():
    """Two token 'languages': tokens co-occurring within their group."""
    group_a = ["alpha", "beta", "gamma"]
    group_b = ["delta", "epsilon", "zeta"]
    rng = np.random.default_rng(3)
    sentences = []
    for _ in range(120):
        group = group_a if rng.random() < 0.5 else group_b
        sentences.append([group[int(rng.integers(0, 3))]
                          for _ in range(8)])
    return sentences


class TestWord2Vec:
    def test_training_reduces_loss(self):
        sentences = make_corpus()
        vocab = Vocabulary.build(sentences)
        encoded = [vocab.encode(s) for s in sentences]
        model = Word2Vec(vocab, dim=12, seed=1)
        first = model.train(encoded[:10], epochs=1)
        final = model.train(encoded, epochs=2)
        assert final < first

    def test_cooccurring_tokens_more_similar(self):
        sentences = make_corpus()
        vocab = Vocabulary.build(sentences)
        encoded = [vocab.encode(s) for s in sentences]
        model = Word2Vec(vocab, dim=12, seed=1)
        model.train(encoded, epochs=3)
        same_group = model.similarity("alpha", "beta")
        cross_group = model.similarity("alpha", "delta")
        assert same_group > cross_group

    def test_most_similar_excludes_self_and_reserved(self):
        sentences = make_corpus()
        vocab = Vocabulary.build(sentences)
        model = Word2Vec(vocab, dim=8, seed=1)
        model.train([vocab.encode(s) for s in sentences], epochs=1)
        neighbours = model.most_similar("alpha", top_k=3)
        names = [n for n, _ in neighbours]
        assert "alpha" not in names
        assert "<pad>" not in names and "<unk>" not in names
        assert len(neighbours) == 3

    def test_vectors_shape(self):
        vocab = Vocabulary.build([["a", "b"]])
        model = Word2Vec(vocab, dim=5)
        assert model.vectors.shape == (len(vocab), 5)

    def test_deterministic_given_seed(self):
        sentences = make_corpus()[:20]
        vocab = Vocabulary.build(sentences)
        encoded = [vocab.encode(s) for s in sentences]
        a = Word2Vec(vocab, dim=6, seed=9)
        b = Word2Vec(vocab, dim=6, seed=9)
        a.train(encoded, epochs=1)
        b.train(encoded, epochs=1)
        assert np.allclose(a.vectors, b.vectors)

    def test_unknown_token_vector_is_unk(self):
        vocab = Vocabulary.build([["a"]])
        model = Word2Vec(vocab, dim=4)
        assert np.allclose(model.vector("zzz"), model.input_vectors[1])


class TestMinCount:
    """Gensim-style rare-token trimming at the *training* level: the
    vocabulary keeps every token, but tokens under min_count train as
    UNK and end up sharing UNK's embedding row."""

    def make_encoded(self):
        sentences = make_corpus()
        sentences[0] = sentences[0][:6] + ["rare14", "rare99"]
        vocab = Vocabulary.build(sentences)
        return vocab, [vocab.encode(s) for s in sentences]

    def test_rare_vectors_tied_to_unk(self):
        vocab, encoded = self.make_encoded()
        model = Word2Vec(vocab, dim=8, seed=2)
        model.train(encoded, epochs=1, min_count=2)
        for rare in ("rare14", "rare99"):
            assert np.allclose(model.vector(rare),
                               model.input_vectors[1])

    def test_rare_tokens_stay_in_vocab(self):
        vocab, _ = self.make_encoded()
        assert "rare14" in vocab and "rare99" in vocab

    def test_frequent_vectors_not_tied(self):
        vocab, encoded = self.make_encoded()
        model = Word2Vec(vocab, dim=8, seed=2)
        model.train(encoded, epochs=1, min_count=2)
        assert not np.allclose(model.vector("alpha"),
                               model.input_vectors[1])

    def test_min_count_one_is_noop(self):
        vocab, encoded = self.make_encoded()
        a = Word2Vec(vocab, dim=8, seed=2)
        b = Word2Vec(vocab, dim=8, seed=2)
        a.train(encoded, epochs=1)
        b.train(encoded, epochs=1, min_count=1)
        assert np.allclose(a.vectors, b.vectors)


class TestBatchedBackend:
    """Statistical equivalence of the vectorized SGNS backend against
    the per-pair reference loop on the same seeded micro-corpus: both
    must learn the same group structure, land at comparable final
    loss, and keep nearest-neighbor sets overlapping.  (Bit-identity
    is impossible — the backends consume the RNG in different orders
    and the batched path sums gradients over frozen weights.)"""

    def train_backend(self, backend, seed=1, epochs=3):
        sentences = make_corpus()
        vocab = Vocabulary.build(sentences)
        encoded = [vocab.encode(s) for s in sentences]
        model = Word2Vec(vocab, dim=12, seed=seed, backend=backend)
        loss = model.train(encoded, epochs=epochs)
        return model, loss

    def test_env_selects_backend(self, monkeypatch):
        vocab = Vocabulary.build([["a", "b"]])
        monkeypatch.setenv("REPRO_W2V_BACKEND", "pairwise")
        assert Word2Vec(vocab, dim=4).backend == "pairwise"
        monkeypatch.delenv("REPRO_W2V_BACKEND")
        assert Word2Vec(vocab, dim=4).backend == "batched"

    def test_unknown_backend_rejected(self):
        vocab = Vocabulary.build([["a", "b"]])
        with pytest.raises(ValueError, match="backend"):
            Word2Vec(vocab, dim=4, backend="turbo")

    def test_final_loss_within_tolerance(self):
        _, batched = self.train_backend("batched")
        _, pairwise = self.train_backend("pairwise")
        assert batched == pytest.approx(pairwise, rel=0.25)

    def test_learns_same_group_structure(self):
        model, _ = self.train_backend("batched")
        for token, same, cross in (("alpha", "beta", "delta"),
                                   ("delta", "zeta", "gamma")):
            assert model.similarity(token, same) > \
                model.similarity(token, cross)

    def test_neighborhoods_preserved(self):
        batched, _ = self.train_backend("batched")
        pairwise, _ = self.train_backend("pairwise")
        overlaps = []
        for token in ("alpha", "beta", "gamma", "delta",
                      "epsilon", "zeta"):
            b = {t for t, _ in batched.most_similar(token, top_k=2)}
            p = {t for t, _ in pairwise.most_similar(token, top_k=2)}
            overlaps.append(len(b & p) / 2)
        assert sum(overlaps) / len(overlaps) >= 0.5

    def test_batched_deterministic_given_seed(self):
        a, _ = self.train_backend("batched", seed=4)
        b, _ = self.train_backend("batched", seed=4)
        assert np.allclose(a.vectors, b.vectors)
