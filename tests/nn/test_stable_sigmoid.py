"""Regression tests for the float32 sigmoid overflow fix.

``exp(500)`` is infinite under float32 (finite ``exp`` stops near 88),
so the old ``1 / (1 + exp(-clip(z, -500, 500)))`` emitted an overflow
RuntimeWarning on confidently-negative logits and leaned on IEEE inf
propagation for the answer.  Every test here runs under
``np.errstate(over="raise", invalid="raise")`` so any regression is a
hard FloatingPointError, not a warning scrolled past in CI.
"""

import numpy as np
import pytest

from repro.models.sevuldet import SEVulDetNet
from repro.nn import Tensor, stable_sigmoid

EXTREME = [-5000.0, -500.0, -89.0, -1.0, 0.0, 1.0, 89.0, 500.0, 5000.0]


class TestStableSigmoid:
    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_no_fp_warning_on_extreme_logits(self, dtype):
        logits = np.array(EXTREME, dtype=dtype)
        with np.errstate(over="raise", invalid="raise",
                         divide="raise"):
            probs = stable_sigmoid(logits)
        assert probs.dtype == dtype
        assert np.isfinite(probs).all()
        assert ((probs >= 0.0) & (probs <= 1.0)).all()

    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_matches_reference_in_safe_range(self, dtype):
        logits = np.linspace(-30, 30, 201).astype(dtype)
        expected = 1.0 / (1.0 + np.exp(-logits.astype(np.float64)))
        assert np.allclose(stable_sigmoid(logits), expected,
                           atol=1e-6)

    def test_saturation_and_symmetry(self):
        logits = np.array(EXTREME)
        probs = stable_sigmoid(logits)
        assert probs[0] < 1e-300 and probs[-1] == 1.0
        assert stable_sigmoid(np.array([0.0]))[0] == 0.5
        assert np.allclose(probs + stable_sigmoid(-logits), 1.0)

    def test_integer_input_promoted_to_float(self):
        probs = stable_sigmoid(np.array([-1000, 0, 1000]))
        assert probs.dtype.kind == "f"
        assert probs[0] < 1e-300
        assert probs[1] == 0.5 and probs[2] == 1.0


class TestPredictProbaStability:
    def test_model_predict_proba_never_warns(self, monkeypatch):
        """End-to-end: a model whose head emits extreme float32 logits
        must score without any floating-point warning, through both
        the eval-mode fused kernel and the training-mode graph
        forward that ``predict_proba`` routes between."""
        model = SEVulDetNet(vocab_size=16, dim=8, channels=4, seed=0)
        model.eval()
        logits = np.array(EXTREME, dtype=np.float32)
        monkeypatch.setattr(model, "forward",
                            lambda token_ids: Tensor(logits))
        monkeypatch.setattr(model, "forward_inference",
                            lambda token_ids: logits)
        token_ids = np.zeros((len(EXTREME), 6), dtype=np.int64)
        for mode in (model.eval, model.train):
            mode()
            with np.errstate(over="raise", invalid="raise"):
                probs = model.predict_proba(token_ids)
            assert np.isfinite(probs).all()
            # Scores keep the logits' compute dtype, so sigmoid(-500)
            # saturates at that dtype's underflow floor: ~3e-39 under
            # float32, ~7e-218 under float64 — tiny either way.
            assert probs[1] < 1e-38
            assert probs[-2] == 1.0   # sigmoid(+500) saturates to 1
