"""Differential property tests for the interpreter.

Random straight-line integer programs are generated together with a
Python reference evaluation; the interpreter must agree exactly
(including C's truncating division and int32 wrap-around).
"""

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.lang.interp import run_program

_INT_MIN, _INT_MAX = -(2 ** 31), 2 ** 31 - 1


def _wrap(value: int) -> int:
    return (value - _INT_MIN) % (2 ** 32) + _INT_MIN


def _c_div(a: int, b: int) -> int:
    quotient = abs(a) // abs(b)
    return -quotient if (a < 0) != (b < 0) else quotient


def _c_mod(a: int, b: int) -> int:
    return a - _c_div(a, b) * b


@st.composite
def straight_line_programs(draw):
    """(source, expected_final_value) pairs over variables a, b, c."""
    values = {"a": draw(st.integers(-1000, 1000)),
              "b": draw(st.integers(-1000, 1000)),
              "c": draw(st.integers(-1000, 1000))}
    lines = [f"int {name} = {value};" for name, value in values.items()]
    for _ in range(draw(st.integers(1, 8))):
        target = draw(st.sampled_from(sorted(values)))
        left = draw(st.sampled_from(sorted(values)))
        right = draw(st.sampled_from(sorted(values)))
        op = draw(st.sampled_from(["+", "-", "*", "/", "%", "&", "|",
                                   "^"]))
        if op in ("/", "%") and values[right] == 0:
            op = "+"
        lines.append(f"{target} = {left} {op} {right};")
        lhs, rhs = values[left], values[right]
        if op == "+":
            values[target] = _wrap(lhs + rhs)
        elif op == "-":
            values[target] = _wrap(lhs - rhs)
        elif op == "*":
            values[target] = _wrap(lhs * rhs)
        elif op == "/":
            values[target] = _c_div(lhs, rhs)
        elif op == "%":
            values[target] = _c_mod(lhs, rhs)
        elif op == "&":
            values[target] = lhs & rhs
        elif op == "|":
            values[target] = lhs | rhs
        elif op == "^":
            values[target] = lhs ^ rhs
    body = "\n".join(lines)
    source = (f"int main() {{\n{body}\n"
              f'printf("%d", a);\nreturn 0;\n}}')
    return source, values["a"]


class TestDifferentialExecution:
    @given(straight_line_programs())
    @settings(max_examples=120, deadline=None)
    def test_matches_python_reference(self, program):
        source, expected = program
        result = run_program(source)
        assert result.ok, source
        assert result.output == str(expected), source

    @given(st.integers(-10_000, 10_000), st.integers(-10_000, 10_000))
    @settings(max_examples=80, deadline=None)
    def test_comparison_operators(self, a, b):
        source = (f"int main() {{\nint a = {a};\nint b = {b};\n"
                  'printf("%d%d%d%d%d%d", a < b, a <= b, a > b, '
                  "a >= b, a == b, a != b);\nreturn 0;\n}")
        expected = "".join(str(int(check)) for check in
                           (a < b, a <= b, a > b, a >= b, a == b,
                            a != b))
        assert run_program(source).output == expected

    @given(st.integers(0, 63), st.integers(-1000, 1000))
    @settings(max_examples=60, deadline=None)
    def test_shifts(self, shift, value):
        source = (f"int main() {{\nint v = {value};\n"
                  f'printf("%d", v << {shift % 16});\nreturn 0;\n}}')
        expected = _wrap(value << (shift % 16))
        assert run_program(source).output == str(expected)

    @given(st.lists(st.integers(0, 255), min_size=0, max_size=12))
    @settings(max_examples=60, deadline=None)
    def test_atoi_fgets_roundtrip(self, payload):
        """Numeric stdin reaches the program faithfully via
        fgets + atoi."""
        number = int("".join(chr(b) for b in payload
                             if chr(b) in "0123456789")[:5] or "0")
        assume(number >= 0)
        source = ("int main() {\nchar line[32];\nfgets(line, 32, 0);\n"
                  'printf("%d", atoi(line));\nreturn 0;\n}')
        stdin = str(number).encode() + b"\n"
        assert run_program(source, stdin=stdin).output == str(number)

    @given(st.integers(1, 30), st.integers(0, 29))
    @settings(max_examples=50, deadline=None)
    def test_array_store_load_roundtrip(self, size, index):
        assume(index < size)
        source = (f"int main() {{\nint arr[{size}];\n"
                  f"arr[{index}] = 4242;\n"
                  f'printf("%d", arr[{index}]);\nreturn 0;\n}}')
        assert run_program(source).output == "4242"

    @given(st.integers(0, 30), st.integers(1, 30))
    @settings(max_examples=50, deadline=None)
    def test_oob_detected_iff_out_of_bounds(self, index, size):
        source = (f"int main() {{\nint arr[{size}];\n"
                  f"arr[{index}] = 1;\nreturn 0;\n}}")
        result = run_program(source)
        if index < size:
            assert result.ok
        else:
            assert result.crashed
