#!/usr/bin/env python3
"""Benchmark the always-on scan server under saturating client load.

Trains a small detector, launches the real daemon (``python -m repro
serve``, process-backed scorer over shared-memory weights) as a
subprocess, then drives it over its unix socket and writes the
measurements to ``benchmarks/results/BENCH_server.json``::

    PYTHONPATH=src python scripts/bench_server.py          # full run
    PYTHONPATH=src python scripts/bench_server.py --smoke  # CI-sized

Phases:

* ``parity`` — the scan corpus through the server once, compared
  field-for-field against the in-process ``ScanService`` verdicts
  (themselves pinned byte-identical to serial ``detect_case`` by the
  test suite).  Gated in every mode: determinism does not get noisy.
* ``saturation`` — N client threads, each holding a sliding window of
  pipelined scans open against unique (never-cached) sources, so the
  server's dispatcher batching and micro-batch scorer actually fill.
  Records throughput and per-request p50/p95/p99 latency.
* ``overload`` — one client pipelines far past ``--max-pending`` to
  measure admission control: the shed rate is the point, not a
  failure.

The headline target is ``batch_fill_mean``: the one-file-at-a-time
CLI baseline measured 0.044 (BENCH_scan.json — batches 4% full).  A
server worth running must keep its scorer batches materially fuller
than that under load.

``--smoke`` shrinks everything so CI finishes in seconds and asserts
only the JSON contract plus verdict parity; the checked-in
BENCH_server.json comes from a full run.
"""

from __future__ import annotations

import argparse
import itertools
import json
import os
import subprocess
import sys
import tempfile
import threading
import time
from dataclasses import replace
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.core.config import SCALE_PRESETS  # noqa: E402
from repro.core.detector import SEVulDet  # noqa: E402
from repro.core.ipc import ScanClient  # noqa: E402
from repro.core.serve import ScanService  # noqa: E402
from repro.datasets.sard import generate_sard_corpus  # noqa: E402

#: BENCH_scan.json's batched-mode fill with one-file-per-call traffic.
BASELINE_BATCH_FILL = 0.044
TARGET_BATCH_FILL = 0.15  # "materially above": >= ~3.4x baseline


def start_daemon(model_path: Path, socket_path: Path, *,
                 workers: int, batch_size: int, scorer: str,
                 max_pending: int) -> subprocess.Popen:
    env = dict(os.environ, PYTHONPATH=str(ROOT / "src"))
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--model", str(model_path), "--socket", str(socket_path),
         "--workers", str(workers), "--batch-size", str(batch_size),
         "--scorer", scorer, "--max-pending", str(max_pending)],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True)
    deadline = time.time() + 120
    while time.time() < deadline:
        if proc.poll() is not None:
            raise RuntimeError(
                f"daemon exited early:\n{proc.stdout.read()}")
        if socket_path.exists():
            try:
                with ScanClient(str(socket_path), timeout=5) as ping:
                    if ping.ping().get("status") == "ok":
                        return proc
            except OSError:
                pass
        time.sleep(0.2)
    proc.kill()
    raise RuntimeError("daemon did not come up within 120s")


def pump(address: str, requests: list[dict], window: int) -> dict:
    """Sliding-window pipelining client: keep ``window`` scans in
    flight, record per-request latency from send to response."""
    latencies: list[float] = []
    shed = errors = 0
    with ScanClient(address, timeout=300) as client:
        send_times: dict[str, float] = {}
        next_index = 0
        outstanding = 0
        while next_index < len(requests) or outstanding:
            while outstanding < window and next_index < len(requests):
                rid = str(next_index)
                send_times[rid] = time.perf_counter()
                client.send({"op": "scan", "id": rid,
                             **requests[next_index]})
                next_index += 1
                outstanding += 1
            response = client.receive()
            outstanding -= 1
            rid = str(response.get("id"))
            latency = time.perf_counter() - send_times.pop(rid)
            status = response.get("status")
            if status == "ok":
                latencies.append(latency)
            elif status == "shed":
                shed += 1
            else:
                errors += 1
    return {"latencies": latencies, "shed": shed, "errors": errors}


def percentile(sorted_values: list[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1,
                int(round(q * (len(sorted_values) - 1))))
    return sorted_values[index]


def unique_requests(cases, client_slot: int, rounds: int
                    ) -> list[dict]:
    """Per-client, per-round source variants: unique fingerprints so
    the verdict cache cannot absorb the load phase."""
    out = []
    for round_no in range(rounds):
        for index, case in enumerate(cases):
            tag = f"\n// bench {client_slot}-{round_no}-{index}\n"
            out.append({"name": f"{case.name}#{client_slot}"
                                f".{round_no}.{index}",
                        "source": case.source + tag})
    return out


def bench_parity(address: str, detector: SEVulDet, cases, *,
                 max_pending: int) -> dict:
    """Server verdicts vs the in-process service, field for field.

    Batches are chunked below the per-client admission budget so the
    parity phase measures determinism, not backpressure — a shed
    response carries no verdict and would read as divergence.
    """
    stripped = [replace(case, vulnerable=False,
                        vulnerable_lines=frozenset(), cwe="",
                        category="", origin="serve")
                for case in cases]
    with ScanService(detector, workers=2, batch_size=16) as service:
        expected = [v.as_record()
                    for v in service.scan_cases(stripped)]
    chunk = max(1, max_pending // 2)
    responses: list[dict] = []
    with ScanClient(address, timeout=300) as client:
        for start in range(0, len(cases), chunk):
            responses.extend(client.scan_batch(
                [{"name": case.name, "source": case.source}
                 for case in cases[start:start + chunk]]))
    shed = sum(1 for r in responses if r.get("status") == "shed")
    got = [r.get("verdict") for r in responses]
    identical = got == expected
    token_ok = all(r.get("config_token") == detector.config_token()
                   for r in responses)
    return {"cases": len(cases), "shed": shed,
            "identical": identical,
            "config_token_consistent": token_ok}


def bench_saturation(address: str, cases, *, clients: int,
                     rounds: int, window: int) -> dict:
    results: list[dict | None] = [None] * clients
    threads = []
    start = time.perf_counter()
    for slot in range(clients):
        requests = unique_requests(cases, slot, rounds)
        thread = threading.Thread(
            target=lambda s=slot, r=requests:
                results.__setitem__(s, pump(address, r, window)))
        thread.start()
        threads.append(thread)
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start
    latencies = sorted(itertools.chain.from_iterable(
        r["latencies"] for r in results))
    ok = len(latencies)
    shed = sum(r["shed"] for r in results)
    errors = sum(r["errors"] for r in results)
    return {
        "seconds": round(elapsed, 4),
        "requests": ok + shed + errors,
        "ok": ok,
        "shed": shed,
        "errors": errors,
        "cases_per_sec": round(ok / elapsed, 2),
        "latency_ms": {
            "p50": round(percentile(latencies, 0.50) * 1e3, 3),
            "p95": round(percentile(latencies, 0.95) * 1e3, 3),
            "p99": round(percentile(latencies, 0.99) * 1e3, 3),
        },
    }


def bench_overload(address: str, cases, *, max_pending: int) -> dict:
    """Blow past the per-client budget; the shed rate is the result."""
    requests = unique_requests(cases, client_slot=99,
                               rounds=max(2, (max_pending * 6)
                                          // max(len(cases), 1) + 1))
    window = max_pending * 4
    result = pump(address, requests, window)
    total = (len(result["latencies"]) + result["shed"]
             + result["errors"])
    return {
        "requests": total,
        "ok": len(result["latencies"]),
        "shed": result["shed"],
        "errors": result["errors"],
        "shed_rate": round(result["shed"] / max(total, 1), 4),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run: tiny corpus, contract + "
                             "parity gates only")
    parser.add_argument("--clients", type=int, default=None,
                        help="saturation client threads "
                             "(default 4, smoke 2)")
    parser.add_argument("--rounds", type=int, default=None,
                        help="corpus passes per client "
                             "(default 3, smoke 1)")
    parser.add_argument("--window", type=int, default=32,
                        help="in-flight scans per client (clipped to "
                             "--max-pending); deeper windows keep the "
                             "scorer queue full between dispatches")
    parser.add_argument("--workers", type=int, default=2,
                        help="daemon scorer worker processes")
    parser.add_argument("--batch-size", type=int, default=32,
                        help="scorer batch capacity; sized to the "
                             "length-grouped traffic so fill is "
                             "meaningful, not padded with headroom")
    parser.add_argument("--scorer", default="process",
                        choices=("process", "thread"))
    parser.add_argument("--max-pending", type=int, default=32)
    parser.add_argument("--output", type=Path,
                        default=ROOT / "benchmarks" / "results"
                        / "BENCH_server.json")
    args = parser.parse_args(argv)

    scan_n = 8 if args.smoke else 40
    train_n = 20 if args.smoke else 80
    clients = args.clients or (2 if args.smoke else 4)
    rounds = args.rounds or (1 if args.smoke else 3)
    scale = SCALE_PRESETS["small"]

    detector = SEVulDet(scale=scale, seed=3)
    detector.fit(generate_sard_corpus(train_n, seed=31))
    cases = generate_sard_corpus(scan_n, seed=99)

    with tempfile.TemporaryDirectory() as tmp:
        model_path = Path(tmp) / "model.npz"
        socket_path = Path(tmp) / "scan.sock"
        detector.save(model_path)
        print(f"starting daemon (scorer={args.scorer}, "
              f"workers={args.workers}) ...")
        daemon = start_daemon(model_path, socket_path,
                              workers=args.workers,
                              batch_size=args.batch_size,
                              scorer=args.scorer,
                              max_pending=args.max_pending)
        address = str(socket_path)
        try:
            parity = bench_parity(address, detector, cases,
                                  max_pending=args.max_pending)
            print(f"parity: {parity['cases']} cases, identical="
                  f"{parity['identical']} "
                  f"(shed {parity['shed']})")

            saturation = bench_saturation(
                address, cases, clients=clients, rounds=rounds,
                window=min(args.window, args.max_pending))
            lat = saturation["latency_ms"]
            print(f"saturation: {saturation['ok']} scans in "
                  f"{saturation['seconds']}s "
                  f"({saturation['cases_per_sec']} cases/s), "
                  f"p50={lat['p50']}ms p95={lat['p95']}ms "
                  f"p99={lat['p99']}ms")

            overload = bench_overload(address, cases,
                                      max_pending=args.max_pending)
            print(f"overload: {overload['shed']}/"
                  f"{overload['requests']} shed "
                  f"(rate {overload['shed_rate']:.2%})")

            with ScanClient(address, timeout=60) as client:
                stats = client.stats()
                client.shutdown()
            daemon.wait(timeout=60)
        finally:
            if daemon.poll() is None:
                daemon.kill()

    fill = (stats["service"]["batch_fill"] or {}).get("mean", 0.0)
    fill = round(fill, 4)
    print(f"scorer batch fill mean: {fill} "
          f"(one-shot baseline {BASELINE_BATCH_FILL})")

    report = {
        "benchmark": "server",
        "mode": "smoke" if args.smoke else "full",
        "dtype": os.environ.get("REPRO_DTYPE", "float32"),
        "corpus": {"train_cases": train_n, "scan_cases": scan_n},
        "server": {"scorer": args.scorer, "workers": args.workers,
                   "batch_size": args.batch_size,
                   "max_pending": args.max_pending},
        "load": {"clients": clients, "rounds": rounds,
                 "window": min(args.window, args.max_pending)},
        "parity": parity,
        "saturation": saturation,
        "overload": overload,
        "batch_fill_mean": fill,
        "baseline_batch_fill_mean": BASELINE_BATCH_FILL,
        "targets": {"batch_fill_mean": TARGET_BATCH_FILL,
                    "identical": True,
                    "overload_sheds": True},
        "targets_met": {
            "batch_fill_mean": fill >= TARGET_BATCH_FILL,
            "identical": parity["identical"]
            and parity["config_token_consistent"],
            "overload_sheds": overload["shed"] > 0,
        },
    }
    args.output.parent.mkdir(parents=True, exist_ok=True)
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.output}")

    if not report["targets_met"]["identical"]:
        print("error: server verdicts diverged from serial",
              file=sys.stderr)
        return 1
    if not args.smoke and not all(report["targets_met"].values()):
        print("warning: server targets not met", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
