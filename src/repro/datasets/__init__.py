"""Synthetic corpora: SARD/NVD substitutes, Xen CVE miniatures, and
Juliet/CVEfixes-style corpora, plus the dataset-adapter protocol the
benchmark matrix consumes them through."""

from .manifest import TestCase
from .cwe_templates import TEMPLATES, Template, generate_case, template_names
from .sard import corpus_statistics, generate_sard_corpus
from .nvd import generate_nvd_corpus
from .xen import CVE_CASES, cve_2016_4453, cve_2016_9104, cve_2016_9776, generate_xen_corpus
from .juliet import generate_juliet_corpus, juliet_layout
from .cvefixes import cvefixes_layout, generate_cvefixes_corpus
from .adapters import (
    CVEFixesAdapter,
    DatasetAdapter,
    DatasetSplit,
    FixedCorpusAdapter,
    JulietAdapter,
    NvdAdapter,
    SardAdapter,
    XenAdapter,
    default_adapters,
    derive_seed,
)

__all__ = [
    "TestCase", "TEMPLATES", "Template", "generate_case", "template_names",
    "corpus_statistics", "generate_sard_corpus", "generate_nvd_corpus",
    "CVE_CASES", "cve_2016_4453", "cve_2016_9104", "cve_2016_9776",
    "generate_xen_corpus",
    "generate_juliet_corpus", "juliet_layout",
    "generate_cvefixes_corpus", "cvefixes_layout",
    "DatasetAdapter", "DatasetSplit", "derive_seed",
    "SardAdapter", "NvdAdapter", "XenAdapter", "JulietAdapter",
    "CVEFixesAdapter", "FixedCorpusAdapter", "default_adapters",
]
