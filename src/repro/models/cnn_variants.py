"""Ablation variants of the SEVulDet network (paper Table III).

* ``plain_cnn``      — CNN + SPP, no attention at all.
* ``cnn_token_att``  — adds token attention only (Step IV).
* ``cnn_multi_att``  — the full multilayer attention (Step IV + CBAM),
  i.e. the SEVulDet network itself.
"""

from __future__ import annotations

import numpy as np

from .sevuldet import SEVulDetNet

__all__ = ["plain_cnn", "cnn_token_att", "cnn_multi_att",
           "ABLATION_BUILDERS"]


def plain_cnn(vocab_size: int, dim: int = 30,
              pretrained: np.ndarray | None = None,
              seed: int = 7, **kwargs) -> SEVulDetNet:
    """CNN without attention (Table III row 1)."""
    return SEVulDetNet(vocab_size, dim=dim, use_token_attention=False,
                       use_cbam=False, pretrained=pretrained, seed=seed,
                       **kwargs)


def cnn_token_att(vocab_size: int, dim: int = 30,
                  pretrained: np.ndarray | None = None,
                  seed: int = 7, **kwargs) -> SEVulDetNet:
    """CNN with token attention only (Table III row 2)."""
    return SEVulDetNet(vocab_size, dim=dim, use_token_attention=True,
                       use_cbam=False, pretrained=pretrained, seed=seed,
                       **kwargs)


def cnn_multi_att(vocab_size: int, dim: int = 30,
                  pretrained: np.ndarray | None = None,
                  seed: int = 7, **kwargs) -> SEVulDetNet:
    """CNN with the full multilayer attention (Table III row 3)."""
    return SEVulDetNet(vocab_size, dim=dim, use_token_attention=True,
                       use_cbam=True, pretrained=pretrained, seed=seed,
                       **kwargs)


ABLATION_BUILDERS = {
    "CNN": plain_cnn,
    "CNN-TokenATT": cnn_token_att,
    "CNN-MultiATT": cnn_multi_att,
}
