"""CVEfixes-style synthetic corpus: pre/post fix-commit pairs.

The CVEfixes dataset mines vulnerability-fixing commits from real
projects and keeps, for every CVE, the file *before* the fix commit
(vulnerable) and *after* it (patched), keyed by CVE id and commit
hash.  :func:`generate_cvefixes_corpus` reproduces that shape from the
CWE templates: each logical entry is a fix commit — a synthetic CVE id,
a deterministic commit hash, and a pre/post pair generated from one
seed so the two sides differ only where the template's flaw lives.

Compared to the Juliet-style corpus the framing is commit-centric
(``cvefixes/CVE-2019-10023/3f41c9a1/pre/driver.c``) and the class
balance is configurable, mirroring the skew of mined real-world data.
"""

from __future__ import annotations

import hashlib

import numpy as np

from .cwe_templates import TEMPLATES, Template, generate_case
from .manifest import TestCase

__all__ = ["generate_cvefixes_corpus", "cvefixes_layout"]


def _commit_hash(cve: str, seed: int) -> str:
    digest = hashlib.sha1(f"{cve}:{seed}".encode("utf-8"))
    return digest.hexdigest()[:8]


def generate_cvefixes_corpus(
    count: int,
    seed: int = 0,
    vulnerable_fraction: float = 0.5,
    categories: tuple[str, ...] | None = None,
) -> list[TestCase]:
    """Generate ``count`` cases as pre/post sides of synthetic fixes.

    Args:
        count: total number of programs emitted.
        seed: master seed; commit i derives seed*74_507 + i.
        vulnerable_fraction: fraction of emitted cases that are the
            ``pre`` (vulnerable) side.  CVEfixes-style corpora are
            commonly consumed unpaired — a model sees the pre side of
            one commit and the post side of another — so the two sides
            of each commit alternate rather than always shipping
            together.
        categories: restrict template families ('FC'/'AU'/'PU'/'AE').

    Case names follow the mined-commit layout:
    ``cvefixes/CVE-2019-10023/3f41c9a1/pre/strcpy_stack_overflow.c``.
    """
    pool: list[Template] = [
        template for template in TEMPLATES
        if categories is None or template.category in categories
    ]
    if not pool:
        raise ValueError(f"no templates for categories {categories!r}")
    rng = np.random.default_rng(seed ^ 0xC0FE)
    cases: list[TestCase] = []
    vulnerable_budget = 0.0
    for index in range(count):
        commit_seed = seed * 74_507 + index
        template = pool[int(rng.integers(0, len(pool)))]
        # Error-diffusion keeps the realised fraction within one case
        # of the requested one at every prefix length.
        vulnerable_budget += vulnerable_fraction
        vulnerable = vulnerable_budget >= 1.0
        if vulnerable:
            vulnerable_budget -= 1.0
        year = 2014 + int(rng.integers(0, 9))
        cve = f"CVE-{year}-{10_000 + int(rng.integers(0, 80_000))}"
        side = "pre" if vulnerable else "post"
        commit = _commit_hash(cve, commit_seed)
        case = generate_case(
            template, vulnerable=vulnerable, seed=commit_seed,
            origin="cvefixes",
            case_name=(f"cvefixes/{cve}/{commit}/{side}/"
                       f"{template.name}.c"))
        case.meta["cve"] = cve
        case.meta["commit"] = commit
        case.meta["side"] = side
        cases.append(case)
    return cases


def cvefixes_layout(cases: list[TestCase]) -> dict[str, list[TestCase]]:
    """Group cases by CVE directory (``cvefixes/CVE-2019-10023``)."""
    layout: dict[str, list[TestCase]] = {}
    for case in cases:
        directory = "/".join(case.name.split("/")[:2])
        layout.setdefault(directory, []).append(case)
    return layout
