"""The paper's evaluation protocol: gadget-level five-fold CV.

Section IV-B: "For each category in our prepared dataset, we randomly
select 30,000 path-sensitive code gadgets and divide them into five
equal parts for five-fold cross-validation."  This module runs that
protocol at any scale: sample gadgets, stratified k-fold split, train a
fresh model per fold, aggregate the fold metrics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..core.pipeline import (LabeledGadget, encode_gadgets,
                             evaluate_classifier, train_classifier)
from ..embedding.vocab import Vocabulary
from .crossval import stratified_kfold_indices
from .metrics import Metrics

__all__ = ["FoldResult", "CrossValidationReport", "cross_validate"]


@dataclass(frozen=True)
class FoldResult:
    """One fold's held-out metrics."""

    fold: int
    metrics: Metrics
    train_size: int
    test_size: int


@dataclass
class CrossValidationReport:
    """Aggregated k-fold outcome."""

    folds: list[FoldResult]

    def _values(self, pick: Callable[[Metrics], float]) -> np.ndarray:
        return np.array([pick(fold.metrics) for fold in self.folds])

    @property
    def mean_f1(self) -> float:
        return float(self._values(lambda m: m.f1).mean())

    @property
    def std_f1(self) -> float:
        return float(self._values(lambda m: m.f1).std())

    @property
    def mean_accuracy(self) -> float:
        return float(self._values(lambda m: m.accuracy).mean())

    @property
    def mean_precision(self) -> float:
        return float(self._values(lambda m: m.precision).mean())

    @property
    def mean_fpr(self) -> float:
        return float(self._values(lambda m: m.fpr).mean())

    @property
    def mean_fnr(self) -> float:
        return float(self._values(lambda m: m.fnr).mean())

    def summary(self) -> dict[str, float]:
        """Paper-style percentage summary across folds."""
        return {
            "FPR(%)": round(self.mean_fpr * 100, 1),
            "FNR(%)": round(self.mean_fnr * 100, 1),
            "A(%)": round(self.mean_accuracy * 100, 1),
            "P(%)": round(self.mean_precision * 100, 1),
            "F1(%)": round(self.mean_f1 * 100, 1),
            "F1 std(%)": round(self.std_f1 * 100, 1),
        }


def cross_validate(
    gadgets: Sequence[LabeledGadget],
    model_builder: Callable[[int, np.ndarray | None], object],
    *,
    k: int = 5,
    sample: int | None = None,
    dim: int = 16,
    w2v_epochs: int = 2,
    epochs: int = 16,
    batch_size: int = 16,
    lr: float = 3e-3,
    threshold: float = 0.5,
    seed: int = 0,
) -> CrossValidationReport:
    """Run the paper's k-fold protocol.

    Args:
        gadgets: the labelled gadget pool.
        model_builder: callable ``(vocab_size, pretrained) -> model``;
            called fresh for every fold.
        k: number of folds (paper: 5).
        sample: randomly subsample this many gadgets first (paper:
            30,000 per category); None keeps everything.
        threshold: decision threshold for the fold metrics.
    """
    rng = np.random.default_rng(seed)
    pool = list(gadgets)
    if sample is not None and sample < len(pool):
        picks = rng.choice(len(pool), size=sample, replace=False)
        pool = [pool[int(i)] for i in picks]
    if len(pool) < k:
        raise ValueError(f"cannot {k}-fold split {len(pool)} gadgets")

    # One vocabulary + embedding per run (training folds dominate the
    # corpus, so vocabulary leakage across folds is negligible and the
    # paper pre-trains word2vec on the full corpus the same way).
    dataset = encode_gadgets(pool, dim=dim, w2v_epochs=w2v_epochs,
                             seed=seed)
    labels = [g.label for g in pool]
    folds: list[FoldResult] = []
    for fold_index, (train_idx, test_idx) in enumerate(
            stratified_kfold_indices(labels, k, rng)):
        model = model_builder(len(dataset.vocab),
                              dataset.word2vec.vectors)
        dataset.bind_embedding_aliases(model)
        train_samples = [dataset.samples[i] for i in train_idx]
        test_samples = [dataset.samples[i] for i in test_idx]
        train_classifier(model, train_samples, epochs=epochs,
                         batch_size=batch_size, lr=lr,
                         seed=seed + fold_index)
        metrics = evaluate_classifier(model, test_samples,
                                      threshold=threshold)
        folds.append(FoldResult(fold_index, metrics,
                                len(train_samples),
                                len(test_samples)))
    return CrossValidationReport(folds)
