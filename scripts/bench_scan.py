#!/usr/bin/env python3
"""Benchmark the batched scan service against the one-shot workflow.

Trains a small detector once, then scans an identical corpus three
ways and writes the measurements as machine-readable JSON to
``benchmarks/results/BENCH_scan.json``::

    PYTHONPATH=src python scripts/bench_scan.py          # full run
    PYTHONPATH=src python scripts/bench_scan.py --smoke  # CI-sized

Modes measured:

* ``per_case`` — the pre-service baseline the ISSUE motivates against:
  the actual one-shot CLI (``python -m repro scan FILE --model M``)
  run as a subprocess per file, so every case pays interpreter
  startup, imports, a fresh model load, extraction, and unbatched
  scoring.  Measured over a bounded sample (each invocation costs
  ~0.5s) and extrapolated as cases/sec.
* ``per_case_inproc`` — transparency row: fresh ``SEVulDet.load`` +
  serial ``detect_case`` per case inside one process (no interpreter
  or import cost).
* ``per_case_warm`` — transparency row: a warm serial loop (model
  already resident); isolates what batching alone buys, separate
  from amortizing startup and the model load.
* ``batched`` — :class:`repro.core.serve.ScanService` with worker
  threads and micro-batched scoring, plus a second warm re-scan of the
  same corpus to measure the result-cache hit rate.

``--smoke`` shrinks the corpus so CI finishes in seconds and records
``"mode": "smoke"``; CI asserts only the JSON contract, never the
speedups (CI machines are too noisy).  The checked-in BENCH_scan.json
comes from a full run and records the acceptance targets: batched
throughput >= 3x the per-case baseline, warm re-scan hit rate >= 95%,
and byte-identical verdicts between the batched and serial paths.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.core.config import SCALE_PRESETS  # noqa: E402
from repro.core.detector import SEVulDet  # noqa: E402
from repro.core.serve import ScanService  # noqa: E402
from repro.datasets.sard import generate_sard_corpus  # noqa: E402

TARGET_SPEEDUP = 3.0
TARGET_HIT_RATE = 0.95


def bench_one_shot_cli(model_path: Path, cases, sample_n: int) -> dict:
    """One-shot baseline: the real CLI as a subprocess per file.

    Each invocation pays interpreter startup + imports + model load +
    extraction + unbatched scoring; sampled because that costs ~0.5s
    per case.
    """
    sample = cases[: min(sample_n, len(cases))]
    env = dict(os.environ, PYTHONPATH=str(ROOT / "src"))
    with tempfile.TemporaryDirectory() as tmp:
        files = []
        for case in sample:
            stem = case.name.rsplit("/", 1)[-1]
            path = Path(tmp) / stem
            path.write_text(case.source)
            files.append(path)
        start = time.perf_counter()
        for path in files:
            proc = subprocess.run(
                [sys.executable, "-m", "repro", "scan", str(path),
                 "--model", str(model_path)],
                env=env, capture_output=True, text=True)
            if proc.returncode not in (0, 1):  # 1 = findings
                raise RuntimeError(
                    f"one-shot scan failed: {proc.stderr}")
        elapsed = time.perf_counter() - start
    return {
        "seconds": round(elapsed, 4),
        "sampled_cases": len(sample),
        "cases_per_sec": round(len(sample) / elapsed, 2),
    }


def bench_per_case_inproc(model_path: Path, cases, scale) -> dict:
    """In-process baseline: model load + serial detect per case."""
    start = time.perf_counter()
    findings = []
    for case in cases:
        detector = SEVulDet(scale=scale)
        detector.load(model_path)
        findings.append(detector.detect_case(case))
    elapsed = time.perf_counter() - start
    return {
        "seconds": round(elapsed, 4),
        "cases_per_sec": round(len(cases) / elapsed, 2),
        "findings": findings,
    }


def bench_per_case_warm(detector: SEVulDet, cases) -> dict:
    """Warm serial loop: resident model, unbatched scoring."""
    start = time.perf_counter()
    findings = [detector.detect_case(case) for case in cases]
    elapsed = time.perf_counter() - start
    return {
        "seconds": round(elapsed, 4),
        "cases_per_sec": round(len(cases) / elapsed, 2),
        "findings": findings,
    }


def bench_batched(detector: SEVulDet, cases, workers: int,
                  batch_size: int) -> dict:
    """ScanService: cold scan, then a warm re-scan of the corpus."""
    with ScanService(detector, workers=workers,
                     batch_size=batch_size) as service:
        start = time.perf_counter()
        verdicts = service.scan_cases(cases)
        cold = time.perf_counter() - start
        start = time.perf_counter()
        rescan = service.scan_cases(cases)
        warm = time.perf_counter() - start
        stats = service.stats()
    hits = sum(v.cached for v in rescan)
    latency = stats["latency_seconds"]
    return {
        "seconds": round(cold, 4),
        "cases_per_sec": round(len(cases) / cold, 2),
        "rescan_seconds": round(warm, 4),
        "rescan_hit_rate": round(hits / len(cases), 4),
        "latency_p50_ms": round(latency.get("p50", 0.0) * 1e3, 3),
        "latency_p95_ms": round(latency.get("p95", 0.0) * 1e3, 3),
        "batch_fill_mean": round(
            stats["batch_fill"].get("mean", 0.0), 4),
        "scored_gadgets": stats["scored_gadgets"],
        "batches": stats["batches"],
        "verdicts": verdicts,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run: tiny corpus, no perf gate")
    parser.add_argument("--cases", type=int, default=None,
                        help="scan corpus programs "
                             "(default 80, smoke 8)")
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--batch-size", type=int, default=64)
    parser.add_argument("--output", type=Path,
                        default=ROOT / "benchmarks" / "results"
                        / "BENCH_scan.json")
    args = parser.parse_args(argv)

    scan_n = args.cases or (8 if args.smoke else 80)
    train_n = 20 if args.smoke else 80
    sample_n = 3 if args.smoke else 12
    scale = SCALE_PRESETS["small"]

    train_cases = generate_sard_corpus(train_n, seed=31)
    scan_cases = generate_sard_corpus(scan_n, seed=99)
    detector = SEVulDet(scale=scale, seed=3)
    detector.fit(train_cases)
    with tempfile.TemporaryDirectory() as tmp:
        model_path = Path(tmp) / "model.npz"
        detector.save(model_path)
        print(f"scanning {scan_n} cases (trained on {train_n})")

        per_case = bench_one_shot_cli(model_path, scan_cases,
                                      sample_n)
        print(f"per-case (one-shot CLI subprocess, "
              f"{per_case['sampled_cases']} sampled): "
              f"{per_case['seconds']}s "
              f"({per_case['cases_per_sec']} cases/s)")

        inproc = bench_per_case_inproc(model_path, scan_cases, scale)
    print(f"per-case in-process (load + detect): "
          f"{inproc['seconds']}s "
          f"({inproc['cases_per_sec']} cases/s)")

    warm_loop = bench_per_case_warm(detector, scan_cases)
    print(f"per-case warm (resident model):  "
          f"{warm_loop['seconds']}s "
          f"({warm_loop['cases_per_sec']} cases/s)")

    batched = bench_batched(detector, scan_cases, args.workers,
                            args.batch_size)
    print(f"batched service:                 "
          f"{batched['seconds']}s "
          f"({batched['cases_per_sec']} cases/s); warm re-scan "
          f"{batched['rescan_seconds']}s "
          f"(hit rate {batched['rescan_hit_rate']:.2%})")

    identical = all(
        list(verdict.findings) == serial == warm
        for verdict, serial, warm in zip(batched["verdicts"],
                                         inproc["findings"],
                                         warm_loop["findings"]))
    speedup = round(batched["cases_per_sec"]
                    / max(per_case["cases_per_sec"], 1e-9), 2)
    speedup_vs_warm = round(batched["cases_per_sec"]
                            / max(warm_loop["cases_per_sec"], 1e-9),
                            2)
    print(f"speedup vs one-shot CLI: {speedup}x (vs warm serial "
          f"loop: {speedup_vs_warm}x); identical verdicts: "
          f"{identical}")

    for bucket in (inproc, warm_loop):
        bucket.pop("findings")
    batched.pop("verdicts")
    report = {
        "benchmark": "scan",
        "mode": "smoke" if args.smoke else "full",
        "dtype": os.environ.get("REPRO_DTYPE", "float32"),
        "corpus": {"train_cases": train_n, "scan_cases": scan_n},
        "workers": args.workers,
        "batch_size": args.batch_size,
        "per_case": per_case,
        "per_case_inproc": inproc,
        "per_case_warm": warm_loop,
        "batched": batched,
        "speedup": speedup,
        "speedup_vs_warm_serial": speedup_vs_warm,
        "identical": identical,
        "targets": {"speedup": TARGET_SPEEDUP,
                    "rescan_hit_rate": TARGET_HIT_RATE},
        "targets_met": {
            "speedup": speedup >= TARGET_SPEEDUP,
            "rescan_hit_rate":
                batched["rescan_hit_rate"] >= TARGET_HIT_RATE,
            "identical": identical,
        },
    }
    args.output.parent.mkdir(parents=True, exist_ok=True)
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.output}")

    if not identical:
        print("error: batched verdicts diverged from serial",
              file=sys.stderr)
        return 1
    if not args.smoke and not all(report["targets_met"].values()):
        print("warning: scan targets not met", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
