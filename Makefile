# Common targets for the SEVulDet reproduction.

PYTHON ?= python3
SCALE ?= small

.PHONY: install test bench experiments examples clean

install:
	pip install -e .[dev]

test:
	$(PYTHON) -m pytest tests/

test-report:
	$(PYTHON) -m pytest tests/ 2>&1 | tee test_output.txt

bench:
	REPRO_SCALE=$(SCALE) $(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-report:
	REPRO_SCALE=$(SCALE) $(PYTHON) -m pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt

experiments: 
	$(PYTHON) scripts/build_experiments_md.py

examples:
	for script in examples/*.py; do $(PYTHON) $$script || exit 1; done

clean:
	rm -rf .pytest_cache .hypothesis .benchmarks
	find . -name __pycache__ -type d -exec rm -rf {} +
