"""Classifier scoring (inference side of paper Step V).

Shared by training-time evaluation, the detector's findings path, and
the batched scan service — all of which must agree on the padding
contract (:data:`SCORE_MIN_LENGTH`) or scores drift between paths.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..eval.metrics import Metrics, confusion_from, metrics_from
from ..nn import (Module, Sample, bucketed_batches, get_default_dtype,
                  no_grad, pad_or_truncate)

__all__ = ["SCORE_MIN_LENGTH", "output_dtype", "predict_proba",
           "evaluate_classifier"]

#: Minimum padded sample length fed to the flexible-length model: the
#: conv kernel (3) plus SPP need a floor, and padding to it is part of
#: the scoring contract — any batcher (training, predict_proba, the
#: scan service) must pad with the same floor or scores drift.
SCORE_MIN_LENGTH = 4


def output_dtype(model: Module) -> np.dtype:
    """The dtype ``model.predict_proba`` emits — its weights' dtype
    (the fused kernel's compute dtype follows the weights), falling
    back to the session default for a parameterless model."""
    for param in model.parameters():
        return param.data.dtype
    return get_default_dtype()


def predict_proba(model: Module, samples: Sequence[Sample],
                  batch_size: int = 128) -> np.ndarray:
    """Sigmoid scores per sample (order-preserving).

    Inference runs under ``no_grad`` in large length-bucketed batches
    (reusing :func:`bucketed_batches`, whose index channel scatters the
    scores back into corpus order) — no per-length Python grouping, no
    graph bookkeeping.  The accumulator is allocated in the model's
    own output dtype (:func:`output_dtype`), so scores are no longer
    silently up-cast to float64 per batch.
    """
    fixed = getattr(model, "fixed_length", None)
    scores = np.zeros(len(samples), dtype=output_dtype(model))
    model.eval()
    with no_grad():
        if fixed is not None:
            for start in range(0, len(samples), batch_size):
                chunk = samples[start : start + batch_size]
                ids = np.array(
                    [pad_or_truncate(s.token_ids, fixed) for s in chunk],
                    dtype=np.int64)
                scores[start : start + batch_size] = \
                    model.predict_proba(ids)
        else:
            for ids, _, indices in bucketed_batches(
                    samples, batch_size, min_length=SCORE_MIN_LENGTH,
                    with_indices=True):
                scores[indices] = model.predict_proba(ids)
    return scores


def evaluate_classifier(model: Module, samples: Sequence[Sample],
                        threshold: float = 0.5) -> Metrics:
    """Confusion-matrix metrics at a decision threshold."""
    scores = predict_proba(model, samples)
    predictions = (scores >= threshold).astype(int)
    labels = [sample.label for sample in samples]
    return metrics_from(confusion_from(predictions.tolist(), labels))
