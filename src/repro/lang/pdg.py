"""Program Dependence Graph (paper Definition 6).

A :class:`PDG` combines the labelled control-dependence edges from
:mod:`repro.lang.dominance` with the data-dependence edges from
:mod:`repro.lang.dataflow` over one function's CFG nodes.  Slicing
(Step I.3 of the paper) is reachability over these edges.
"""

from __future__ import annotations

import networkx as nx

from .cfg import CFG, CFGNode, build_cfg
from .dataflow import DefUse, collect_def_use, data_dependences
from .dominance import control_dependences
from . import ast_nodes as A

__all__ = ["PDG", "build_pdg"]


class PDG:
    """Dependence graph of a single function.

    Nodes are CFG node ids; edges carry ``kind`` (``"data"`` or
    ``"control"``) plus ``var`` (data) or ``branch`` (control) labels.
    """

    def __init__(self, cfg: CFG, def_use: dict[int, DefUse]):
        self.cfg = cfg
        self.def_use = def_use
        self.graph = nx.MultiDiGraph()
        self.graph.add_nodes_from(cfg.nodes)

    @property
    def function_name(self) -> str:
        return self.cfg.function.name

    def add_data_edge(self, src: CFGNode, dst: CFGNode, var: str) -> None:
        self.graph.add_edge(src.id, dst.id, kind="data", var=var)

    def add_control_edge(self, src: CFGNode, dst: CFGNode,
                         branch: str) -> None:
        self.graph.add_edge(src.id, dst.id, kind="control", branch=branch)

    def node(self, node_id: int) -> CFGNode:
        return self.cfg.nodes[node_id]

    def nodes_on_line(self, line: int) -> list[CFGNode]:
        """Statement nodes whose source line equals ``line``."""
        return [n for n in self.cfg.statement_nodes() if n.line == line]

    def data_edges(self) -> list[tuple[int, int, str]]:
        return [
            (u, v, attrs.get("var", ""))
            for u, v, attrs in self.graph.edges(data=True)
            if attrs["kind"] == "data"
        ]

    def control_edges(self) -> list[tuple[int, int, str]]:
        return [
            (u, v, attrs.get("branch", ""))
            for u, v, attrs in self.graph.edges(data=True)
            if attrs["kind"] == "control"
        ]

    def backward_closure(self, start_ids: set[int], *,
                         data: bool = True,
                         control: bool = True) -> set[int]:
        """Node ids reachable *backwards* from ``start_ids``."""
        return self._closure(start_ids, forward=False, data=data,
                             control=control)

    def forward_closure(self, start_ids: set[int], *,
                        data: bool = True,
                        control: bool = True) -> set[int]:
        """Node ids reachable *forwards* from ``start_ids``."""
        return self._closure(start_ids, forward=True, data=data,
                             control=control)

    def _closure(self, start_ids: set[int], *, forward: bool, data: bool,
                 control: bool) -> set[int]:
        kinds = set()
        if data:
            kinds.add("data")
        if control:
            kinds.add("control")
        visited = set(start_ids)
        stack = list(start_ids)
        while stack:
            current = stack.pop()
            if forward:
                neighbours = (
                    v for _, v, attrs in
                    self.graph.out_edges(current, data=True)
                    if attrs["kind"] in kinds
                )
            else:
                neighbours = (
                    u for u, _, attrs in
                    self.graph.in_edges(current, data=True)
                    if attrs["kind"] in kinds
                )
            for nb in neighbours:
                if nb not in visited:
                    visited.add(nb)
                    stack.append(nb)
        return visited

    def calls_made(self) -> dict[str, list[CFGNode]]:
        """Callee name -> list of CFG nodes containing a call to it."""
        calls: dict[str, list[CFGNode]] = {}
        for node in self.cfg.statement_nodes():
            for name in self.def_use[node.id].called:
                calls.setdefault(name, []).append(node)
        return calls


def build_pdg(function: A.FunctionDef) -> PDG:
    """Build the PDG of one function (CFG + dependences)."""
    cfg = build_cfg(function)
    def_use = collect_def_use(cfg)
    pdg = PDG(cfg, def_use)
    for src, dst, var in data_dependences(cfg, def_use):
        pdg.add_data_edge(src, dst, var)
    for controller, dependent, branch in control_dependences(cfg):
        pdg.add_control_edge(controller, dependent, branch)
    return pdg
