"""Fig 5 — classical static tools vs SEVulDet.

The four scanners and the learned detector run as one matrix column
over the shared corpus: scanners via :class:`StaticToolDetector`
(which also routes their wall time through telemetry), SEVulDet via a
small adapter over the end-to-end facade (program-level ``detect()``
verdicts at the paper's 0.8 threshold, as before).  Paper shape:
* Flawfinder and RATS: high FPR and/or FNR (lexical matching only);
* Checkmarx: better than the grep tools but still weak;
* VUDDY: near-zero FPR, very high FNR (exact-clone matching);
* SEVulDet dominates all of them on F1.

Every scanner cell is cross-checked against the pre-refactor
``evaluate_static_tool`` path — identical metrics on the same corpus.
"""

from repro.baselines.checkmarx import CheckmarxScanner
from repro.baselines.flawfinder import FlawfinderScanner
from repro.baselines.rats import RatsScanner
from repro.baselines.vuddy import VuddyScanner
from repro.core.detector import SEVulDet
from repro.datasets.adapters import FixedCorpusAdapter
from repro.eval.comparison import evaluate_static_tool
from repro.eval.detector import Prediction, StaticToolDetector
from repro.eval.matrix import MatrixRunner

from conftest import run_once

PAPER_NOTE = {
    "Flawfinder": "high FPR+FNR", "RATS": "high FPR+FNR",
    "Checkmarx": "better, still high", "VUDDY": "low FPR / high FNR",
    "SEVulDet": "dominates",
}

TOOLS = ("Flawfinder", "RATS", "Checkmarx", "VUDDY")


class FacadeDetector:
    """The end-to-end SEVulDet facade as a matrix detector (its own
    extraction, 0.8 decision threshold, program-level verdicts)."""

    name = "SEVulDet"

    def __init__(self, scale, seed):
        self._detector = SEVulDet(scale=scale, seed=seed)

    def fit(self, cases, ctx):
        self._detector.fit(cases)

    def predict(self, cases, ctx):
        verdicts = [1 if self._detector.detect(case.source) else 0
                    for case in cases]
        return Prediction(detector=self.name, verdicts=verdicts,
                          scores=[float(v) for v in verdicts],
                          basis="case")


def test_fig5_static_tool_comparison(benchmark, reporter, scale,
                                     train_cases, test_cases):
    def experiment():
        detectors = [
            StaticToolDetector(FlawfinderScanner()),
            StaticToolDetector(RatsScanner()),
            StaticToolDetector(CheckmarxScanner()),
            StaticToolDetector(VuddyScanner()),  # fit() feeds it
            FacadeDetector(scale, seed=31),
        ]
        runner = MatrixRunner(
            detectors,
            [FixedCorpusAdapter("sard", train_cases, test_cases)],
            baseline="Flawfinder", seed=31, resamples=200)
        return runner.run()

    result = run_once(benchmark, experiment)

    for cell in result.cells:
        assert cell.ok, (cell.detector, cell.error)
    results = {name: result.cell(name, "sard").metrics
               for name in (*TOOLS, "SEVulDet")}

    table = reporter("fig5_static_tools",
                     "Fig 5 — classical static tools vs SEVulDet "
                     "(program-level verdicts)")
    for name, metrics in results.items():
        table.add(tool=name, **metrics.as_percentages(),
                  paper_shape=PAPER_NOTE[name])
    table.save_and_print()

    # Parity gate: each scanner cell equals the pre-refactor
    # evaluate_static_tool path on the same corpus.
    vuddy = VuddyScanner()
    for case in train_cases:
        if case.vulnerable:
            vuddy.add_vulnerable(case.source)
    legacy_tools = [FlawfinderScanner(), RatsScanner(),
                    CheckmarxScanner(), vuddy]
    for tool in legacy_tools:
        assert results[tool.name] == \
            evaluate_static_tool(tool, test_cases), tool.name

    # Shape 1: SEVulDet's F1 dominates every classical tool.
    for name in TOOLS:
        assert results["SEVulDet"].f1 > results[name].f1, name

    # Shape 2: VUDDY trades FNR for FPR — lowest FPR of the classical
    # tools, and a high FNR.
    classical_fprs = {name: results[name].fpr for name in TOOLS}
    assert results["VUDDY"].fpr == min(classical_fprs.values())
    assert results["VUDDY"].fnr > 0.5

    # Shape 3: the lexical scanners are substantially wrong somewhere
    # (the sum of their error rates is large).
    for name in ("Flawfinder", "RATS"):
        assert results[name].fpr + results[name].fnr > 0.4, name
