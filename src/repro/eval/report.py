"""Fixed-width table rendering for experiment reports.

Used by the benchmark suite to persist every regenerated paper table
under ``benchmarks/results/``, and available to library users for
their own experiment scripts.
"""

from __future__ import annotations

from pathlib import Path

__all__ = ["Table"]


class Table:
    """Collects dict rows and renders them as an aligned text table.

    Example::

        table = Table("rq1", "Table II - RQ1")
        table.add(network="BLSTM", f1=85.2)
        print(table.render())
        table.save(Path("results"))
    """

    def __init__(self, name: str, title: str):
        self.name = name
        self.title = title
        self.rows: list[dict] = []

    def add(self, **row) -> None:
        """Append one row; column order follows the first row."""
        self.rows.append(row)

    def render(self) -> str:
        """The aligned table as text (title + header + rows)."""
        if not self.rows:
            return f"{self.title}\n(no rows)\n"
        headers = list(self.rows[0])
        widths = {
            header: max(len(str(header)),
                        *(len(str(row.get(header, "")))
                          for row in self.rows))
            for header in headers
        }
        lines = [
            self.title,
            " | ".join(str(h).ljust(widths[h]) for h in headers),
            "-+-".join("-" * widths[h] for h in headers),
        ]
        for row in self.rows:
            lines.append(" | ".join(
                str(row.get(h, "")).ljust(widths[h]) for h in headers))
        return "\n".join(lines) + "\n"

    def save(self, directory: str | Path) -> Path:
        """Write ``<directory>/<name>.txt``; returns the path."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / f"{self.name}.txt"
        path.write_text(self.render())
        return path
