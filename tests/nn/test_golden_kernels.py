"""Golden equivalence: vectorized kernels vs the original loops.

The pooling forwards moved from a per-position ``np.stack`` to an
``as_strided`` window view, and the conv1d / avg_pool1d backwards moved
from per-output-position Python loops to a kernel-offset scatter
(``_col2im_add``).  These tests keep the *original* implementations
inline as references and assert the rewrites are bit-for-bit identical
(``np.array_equal``, no tolerance): same elements, same float
accumulation order.
"""

import numpy as np
import pytest

from repro.nn.ops import avg_pool1d, conv1d, max_pool1d
from repro.nn.tensor import Tensor

#: (batch, channels, length, kernel, stride) covering overlap
#: (stride < kernel), gaps (stride > kernel), and exact tiling.
POOL_CASES = [
    (2, 3, 11, 3, 1),
    (1, 4, 16, 4, 4),
    (3, 2, 10, 2, 3),
    (2, 1, 7, 5, 2),
    (2, 2, 9, 9, 1),
]


def stacked_windows(data: np.ndarray, kernel: int,
                    stride: int) -> np.ndarray:
    """The old pooling forward: materialized (B, C, out_len, k)."""
    out_len = (data.shape[2] - kernel) // stride + 1
    return np.stack(
        [data[:, :, p * stride : p * stride + kernel]
         for p in range(out_len)], axis=2)


def loop_col2im(shape: tuple, grad_windows: np.ndarray, kernel: int,
                stride: int) -> np.ndarray:
    """The old backward scatter: accumulate per output position."""
    grad_x = np.zeros(shape, dtype=grad_windows.dtype)
    out_len = grad_windows.shape[2]
    for position in range(out_len):
        start = position * stride
        grad_x[:, :, start : start + kernel] += \
            grad_windows[:, :, position]
    return grad_x


@pytest.mark.parametrize("batch,channels,length,kernel,stride",
                         POOL_CASES)
class TestPoolingGolden:
    def test_max_pool_forward(self, rng, batch, channels, length,
                              kernel, stride):
        data = rng.standard_normal((batch, channels, length))
        out = max_pool1d(Tensor(data), kernel, stride)
        reference = stacked_windows(data, kernel, stride).max(axis=3)
        assert np.array_equal(out.data, reference)

    def test_avg_pool_forward(self, rng, batch, channels, length,
                              kernel, stride):
        data = rng.standard_normal((batch, channels, length))
        out = avg_pool1d(Tensor(data), kernel, stride)
        reference = stacked_windows(data, kernel, stride).mean(axis=3)
        assert np.array_equal(out.data, reference)

    def test_max_pool_backward(self, rng, batch, channels, length,
                               kernel, stride):
        data = rng.standard_normal((batch, channels, length))
        x = Tensor(data, requires_grad=True)
        out = max_pool1d(x, kernel, stride)
        upstream = rng.standard_normal(out.shape)
        out.backward(upstream)
        windows = stacked_windows(data, kernel, stride)
        arg = windows.argmax(axis=3)
        reference = np.zeros_like(data)
        b_idx, c_idx, p_idx = np.indices(arg.shape)
        np.add.at(reference, (b_idx, c_idx, p_idx * stride + arg),
                  upstream)
        assert np.array_equal(x.grad, reference)

    def test_avg_pool_backward(self, rng, batch, channels, length,
                               kernel, stride):
        data = rng.standard_normal((batch, channels, length))
        x = Tensor(data, requires_grad=True)
        out = avg_pool1d(x, kernel, stride)
        upstream = rng.standard_normal(out.shape)
        out.backward(upstream)
        # the old loop added grad[:, :, p:p+1] / kernel over each window
        shared = np.broadcast_to((upstream / kernel)[:, :, :, None],
                                 upstream.shape + (kernel,))
        reference = loop_col2im(data.shape, shared, kernel, stride)
        assert np.array_equal(x.grad, reference)


@pytest.mark.parametrize("kernel,stride,padding",
                         [(3, 1, 0), (3, 1, 1), (5, 2, 0), (2, 3, 2)])
class TestConvBackwardGolden:
    def test_grad_x_matches_loop(self, rng, kernel, stride, padding):
        batch, in_channels, out_channels, length = 2, 3, 4, 12
        data = rng.standard_normal((batch, in_channels, length))
        w = rng.standard_normal((out_channels, in_channels, kernel))
        x = Tensor(data, requires_grad=True)
        weight = Tensor(w, requires_grad=True)
        out = conv1d(x, weight, stride=stride, padding=padding)
        upstream = rng.standard_normal(out.shape)
        out.backward(upstream)

        padded = length + 2 * padding
        out_len = (padded - kernel) // stride + 1
        w_flat = w.reshape(out_channels, -1)
        grad_cols = np.einsum("bco,ck->bok", upstream, w_flat,
                              optimize=True)
        grad_cols = grad_cols.reshape(batch, out_len, in_channels,
                                      kernel)
        grad_padded = loop_col2im(
            (batch, in_channels, padded),
            grad_cols.transpose(0, 2, 1, 3), kernel, stride)
        reference = (grad_padded if padding == 0 else
                     grad_padded[:, :, padding:-padding])
        assert np.array_equal(x.grad, reference)

    def test_grad_weight_unchanged(self, rng, kernel, stride, padding):
        batch, in_channels, out_channels, length = 2, 3, 4, 12
        data = rng.standard_normal((batch, in_channels, length))
        w = rng.standard_normal((out_channels, in_channels, kernel))
        x = Tensor(data, requires_grad=True)
        weight = Tensor(w, requires_grad=True)
        out = conv1d(x, weight, stride=stride, padding=padding)
        upstream = rng.standard_normal(out.shape)
        out.backward(upstream)

        if padding:
            data = np.pad(data, ((0, 0), (0, 0), (padding, padding)))
        out_len = (data.shape[2] - kernel) // stride + 1
        cols = np.stack(
            [data[:, :, p * stride : p * stride + kernel]
             for p in range(out_len)], axis=1
        ).reshape(batch, out_len, in_channels * kernel)
        grad_w = np.einsum("bco,bok->ck", upstream, cols,
                           optimize=True)
        reference = grad_w.reshape(w.shape)
        assert np.array_equal(weight.grad, reference)
