"""Deeper tests for the NVD-style multi-sink corpus."""

import pytest

from repro.core.pipeline import extract_gadgets
from repro.datasets.nvd import generate_nvd_corpus
from repro.lang.callgraph import analyze


@pytest.fixture(scope="module")
def corpus():
    return generate_nvd_corpus(24, seed=31)


class TestComposition:
    def test_exactly_one_vulnerable_component(self, corpus):
        """Vulnerable NVD cases embed exactly one flaw variant; the
        marked lines must form one contiguous-template cluster."""
        for case in corpus:
            if case.vulnerable:
                assert case.vulnerable_lines
                assert case.cwe != "CWE-000"
            else:
                assert not case.vulnerable_lines

    def test_dispatcher_calls_every_sink(self, corpus):
        for case in corpus[:8]:
            program = analyze(case.source)
            mains = program.call_graph.callees("main")
            assert len(mains) == 1
            dispatcher = next(iter(mains))
            sinks = program.call_graph.callees(dispatcher)
            assert len(sinks) >= 2

    def test_templates_metadata_matches_structure(self, corpus):
        for case in corpus[:8]:
            assert 2 <= len(case.meta["templates"]) <= 3

    def test_deterministic(self):
        a = generate_nvd_corpus(6, seed=9)
        b = generate_nvd_corpus(6, seed=9)
        assert [c.source for c in a] == [c.source for c in b]

    def test_gadget_labels_respect_component_boundaries(self, corpus):
        """Gadgets anchored inside a *patched* component of a
        vulnerable case must stay labelled 0; only gadgets whose slice
        reaches the flawed lines inherit label 1."""
        vulnerable_cases = [c for c in corpus if c.vulnerable][:4]
        gadgets = extract_gadgets(vulnerable_cases, deduplicate=False,
                                  keep_gadget=True)
        flaw_lines = {c.name: c.vulnerable_lines
                      for c in vulnerable_cases}
        for gadget in gadgets:
            assert gadget.gadget is not None
            covered = {line.line for line in gadget.gadget.lines}
            expected = 1 if covered & flaw_lines[gadget.case_name] \
                else 0
            assert gadget.label == expected

    def test_nvd_gadgets_longer_than_sard(self):
        from repro.datasets.sard import generate_sard_corpus
        import numpy as np
        nvd = extract_gadgets(generate_nvd_corpus(10, seed=5))
        sard = extract_gadgets(generate_sard_corpus(20, seed=5))
        nvd_mean = np.mean([len(g.tokens) for g in nvd])
        sard_mean = np.mean([len(g.tokens) for g in sard])
        assert nvd_mean > sard_mean
