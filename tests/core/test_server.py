"""End-to-end tests for the always-on scan server.

Everything runs in-process: a real :class:`ScanServer` bound to a
unix socket under ``tmp_path``, real :class:`ScanClient` connections,
real threads — only the scorer backend defaults to threads so the
suite stays fast (the process backend gets one dedicated end-to-end
test; its batching equivalence is pinned in ``test_serve.py``).

The load-bearing properties:

* the JSONL protocol round-trips and rejects malformed input;
* concurrent pipelining clients each get responses matched to their
  request ids, byte-identical to what the in-process scan service
  (and therefore serial ``detect_case``) produces;
* a client over its in-flight budget is shed immediately with a
  ``shed`` status while admitted requests still complete;
* the round-robin scheduler keeps a one-file client from starving
  behind a 12-file pipeliner;
* hot reload swaps the model with zero dropped requests and every
  response naming the ``config_token`` that actually scored it.
"""

import io
import threading
import time
from dataclasses import replace

import pytest

from repro.core import SCALE_PRESETS, SEVulDet
from repro.core.ipc import (ProtocolError, ScanClient,
                            _split_hostport, decode_message,
                            encode_message, read_message)
from repro.core.serve import ScanService
from repro.core.server import ScanServer
from repro.datasets.sard import generate_sard_corpus
from repro.testing import faults


@pytest.fixture(scope="module")
def detector():
    det = SEVulDet(scale=SCALE_PRESETS["small"], seed=3)
    det.fit(generate_sard_corpus(80, seed=31))
    return det


@pytest.fixture(scope="module")
def corpus():
    return generate_sard_corpus(20, seed=99)


def as_scan_case(case):
    """What the server reconstructs from a wire request: name and
    source only — labels never cross the protocol (and never affect
    verdicts; they only shift the fingerprint)."""
    return replace(case, vulnerable=False,
                   vulnerable_lines=frozenset(), cwe="", category="",
                   origin="serve")


@pytest.fixture(scope="module")
def expected_records(detector, corpus):
    """Reference verdicts from the in-process service — pinned
    byte-identical to serial ``detect_case`` by test_serve.py."""
    with ScanService(detector, workers=2, batch_size=16) as service:
        return [v.as_record() for v in service.scan_cases(
            [as_scan_case(case) for case in corpus])]


@pytest.fixture(scope="module")
def model_paths(detector, tmp_path_factory):
    """Two saved models whose config tokens differ (threshold)."""
    root = tmp_path_factory.mktemp("models")
    path_a = root / "model_a.npz"
    path_b = root / "model_b.npz"
    detector.save(path_a)
    original = detector.threshold
    detector.threshold = 0.5
    try:
        detector.save(path_b)
    finally:
        detector.threshold = original
    return path_a, path_b


def make_server(tmp_path, *, detector=None, model=None, **kwargs):
    kwargs.setdefault("scorer", "thread")
    kwargs.setdefault("workers", 2)
    kwargs.setdefault("batch_size", 16)
    return ScanServer(model=model, detector=detector,
                      socket_path=tmp_path / "scan.sock", **kwargs)


def scan_requests(cases):
    return [{"name": case.name, "source": case.source}
            for case in cases]


class TestProtocol:
    def test_encode_decode_roundtrip(self):
        message = {"op": "scan", "id": "7", "name": "a.c",
                   "source": "int main() { return 0; }\n"}
        line = encode_message(message)
        assert line.endswith(b"\n") and line.count(b"\n") == 1
        assert decode_message(line) == message

    def test_read_message_streams_lines(self):
        buffer = io.BytesIO(encode_message({"a": 1})
                            + encode_message({"b": 2}))
        assert read_message(buffer) == {"a": 1}
        assert read_message(buffer) == {"b": 2}
        assert read_message(buffer) is None  # EOF

    def test_rejects_non_object_and_garbage(self):
        with pytest.raises(ProtocolError):
            decode_message(b"[1, 2, 3]\n")
        with pytest.raises(ProtocolError):
            decode_message(b"not json\n")

    def test_rejects_truncated_line(self):
        with pytest.raises(ProtocolError, match="mid-message"):
            read_message(io.BytesIO(b'{"op": "ping"'))

    def test_address_parsing(self):
        assert _split_hostport("/tmp/scan.sock") == (None, 0)
        assert _split_hostport("./sock:odd/name") == (None, 0)
        assert _split_hostport("127.0.0.1:9000") == \
            ("127.0.0.1", 9000)
        assert _split_hostport("[::1]:9000") == ("::1", 9000)

    def test_unknown_op_answered_with_error(self, detector,
                                            tmp_path):
        with make_server(tmp_path, detector=detector) as server:
            with ScanClient(server.address) as client:
                response = client.request({"op": "frobnicate",
                                           "id": "9"})
        assert response["status"] == "error"
        assert "frobnicate" in response["error"]
        assert response["id"] == "9"

    def test_malformed_scan_rejected(self, detector, tmp_path):
        with make_server(tmp_path, detector=detector) as server:
            with ScanClient(server.address) as client:
                response = client.request({"op": "scan", "id": "1",
                                           "name": "x.c"})
        assert response["status"] == "error"
        assert "source" in response["error"]


class TestServerVerdicts:
    def test_pipelined_scan_matches_serial_verdicts(
            self, detector, corpus, expected_records, tmp_path):
        with make_server(tmp_path, detector=detector) as server:
            with ScanClient(server.address) as client:
                assert client.ping()["status"] == "ok"
                responses = client.scan_batch(scan_requests(corpus))
        assert [r["status"] for r in responses] == \
            ["ok"] * len(corpus)
        token = detector.config_token()
        assert all(r["config_token"] == token for r in responses)
        assert [r["verdict"] for r in responses] == expected_records

    def test_concurrent_clients_get_their_own_answers(
            self, detector, corpus, expected_records, tmp_path):
        with make_server(tmp_path, detector=detector,
                         dispatchers=2) as server:
            outcomes = [None] * 4

            def run(slot):
                with ScanClient(server.address) as client:
                    outcomes[slot] = client.scan_batch(
                        scan_requests(corpus))

            threads = [threading.Thread(target=run, args=(slot,))
                       for slot in range(4)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120.0)
        for responses in outcomes:
            assert responses is not None
            # submission-order ids, byte-identical verdicts
            assert [r["id"] for r in responses] == \
                [str(i) for i in range(len(corpus))]
            assert [r["verdict"] for r in responses] == \
                expected_records

    def test_stats_op_reports_server_and_service(self, detector,
                                                 corpus, tmp_path):
        with make_server(tmp_path, detector=detector) as server:
            with ScanClient(server.address) as client:
                client.scan_batch(scan_requests(corpus[:5]))
                stats = client.stats()
        assert stats["status"] == "ok"
        assert stats["server"]["scans"] == 5
        assert stats["server"]["shed"] == 0
        assert stats["server"]["scorer"] == "thread"
        assert stats["server"]["config_token"] == \
            detector.config_token()
        assert stats["service"]["scored_gadgets"] > 0

    def test_process_backend_end_to_end(self, detector, corpus,
                                        expected_records, tmp_path):
        """The tentpole path: spawned scorer processes over
        shared-memory weights, behind the socket."""
        with make_server(tmp_path, detector=detector,
                         scorer="process") as server:
            with ScanClient(server.address) as client:
                responses = client.scan_batch(
                    scan_requests(corpus[:8]))
        assert [r["verdict"] for r in responses] == \
            expected_records[:8]

    def test_tcp_transport(self, detector, corpus, expected_records):
        server = ScanServer(detector=detector, host="127.0.0.1",
                            port=0, scorer="thread", workers=1,
                            batch_size=16)
        with server:
            host, port = server.address.rsplit(":", 1)
            assert host == "127.0.0.1" and int(port) > 0
            with ScanClient(server.address) as client:
                responses = client.scan_batch(
                    scan_requests(corpus[:3]))
        assert [r["verdict"] for r in responses] == \
            expected_records[:3]


class TestAdmissionControl:
    def test_overload_sheds_instead_of_queueing(self, detector,
                                                corpus, tmp_path):
        slow = corpus[0]
        with make_server(tmp_path, detector=detector,
                         max_pending=2, dispatchers=1,
                         workers=1) as server:
            with faults.injected(f"hang@case:{slow.name}:4"):
                # retry=None: this test pins the raw shed responses,
                # not the default self-healing retry behavior
                with ScanClient(server.address,
                                retry=None) as client:
                    # the slow case wedges the only dispatcher; the
                    # pipelined rest exceeds the in-flight budget
                    responses = client.scan_batch(
                        scan_requests([slow] + corpus[1:10]))
                    stats = client.stats()
        statuses = [r["status"] for r in responses]
        assert statuses.count("ok") == 2
        assert statuses.count("shed") == 8
        # the budget admits in arrival order: slow + one more
        assert statuses[0] == "ok" and statuses[1] == "ok"
        assert all("budget" in r["error"] for r in responses
                   if r["status"] == "shed")
        assert stats["server"]["shed"] == 8
        assert stats["server"]["scans"] == 2

    def test_round_robin_keeps_small_client_unstarved(
            self, detector, corpus, tmp_path):
        slow = corpus[0]
        with make_server(tmp_path, detector=detector,
                         dispatchers=1, workers=1,
                         dispatch_batch=4,
                         max_pending=64) as server:
            with faults.injected(f"hang@case:{slow.name}:3"):
                big = ScanClient(server.address)
                small = ScanClient(server.address)
                try:
                    # wedge the dispatcher, then pile 12 requests on
                    # one connection and a single request on another
                    big.send({"op": "scan", "id": "slow",
                              "name": slow.name,
                              "source": slow.source})
                    time.sleep(0.5)  # dispatcher has taken the bait
                    for index, case in enumerate(corpus[1:13]):
                        big.send({"op": "scan", "id": str(index),
                                  "name": case.name,
                                  "source": case.source})
                    small.send({"op": "scan", "id": "tiny",
                                "name": corpus[13].name,
                                "source": corpus[13].source})
                    small_done = {}

                    def read_small():
                        response = small.receive()
                        small_done["at"] = time.perf_counter()
                        small_done["response"] = response

                    reader = threading.Thread(target=read_small)
                    reader.start()
                    big_last_at = None
                    for _ in range(13):
                        response = big.receive()
                        assert response["status"] == "ok"
                        big_last_at = time.perf_counter()
                    reader.join(timeout=30.0)
                finally:
                    big.close()
                    small.close()
        assert small_done["response"]["status"] == "ok"
        # one request per client per scheduler turn: the small client
        # rides the first post-wedge batch, never the last
        assert small_done["at"] < big_last_at


class TestHotReload:
    def test_reload_swaps_config_token(self, corpus, model_paths,
                                       tmp_path):
        model_a, model_b = model_paths
        with make_server(tmp_path, model=model_a) as server:
            with ScanClient(server.address) as client:
                before = client.scan_batch(scan_requests(corpus[:3]))
                token_a = before[0]["config_token"]
                reply = client.reload(model_b)
                assert reply["status"] == "ok"
                token_b = reply["config_token"]
                after = client.scan_batch(scan_requests(corpus[:3]))
        assert token_a != token_b
        assert all(r["config_token"] == token_a for r in before)
        assert all(r["config_token"] == token_b for r in after)
        assert all(r["status"] == "ok" for r in before + after)

    def test_inflight_completes_on_old_model_nothing_dropped(
            self, corpus, model_paths, tmp_path):
        """Requests in flight at swap time finish on the weights that
        admitted them; requests dispatched after score on the new
        model — and every one of them is answered."""
        model_a, model_b = model_paths
        slow = corpus[0]
        follow = corpus[1]
        with make_server(tmp_path, model=model_a, dispatchers=1,
                         workers=1) as server:
            token_a = server.stats()["server"]["config_token"]
            with faults.injected(f"hang@case:{slow.name}:5"):
                with ScanClient(server.address) as scans, \
                        ScanClient(server.address) as admin:
                    scans.send({"op": "scan", "id": "old",
                                "name": slow.name,
                                "source": slow.source})
                    time.sleep(0.5)  # dispatcher holds the old model
                    scans.send({"op": "scan", "id": "new",
                                "name": follow.name,
                                "source": follow.source})
                    reply = admin.reload(model_b)
                    assert reply["status"] == "ok"
                    token_b = reply["config_token"]
                    responses = {}
                    for _ in range(2):
                        response = scans.receive()
                        responses[response["id"]] = response
        assert set(responses) == {"old", "new"}  # zero dropped
        assert responses["old"]["status"] == "ok"
        assert responses["new"]["status"] == "ok"
        # the wedged scan was admitted before the swap and finished
        # on the old weights; the queued one scored on the new model
        assert responses["old"]["config_token"] == token_a
        assert responses["new"]["config_token"] == token_b
        assert token_a != token_b

    def test_reload_failure_keeps_old_service(self, corpus,
                                              model_paths, tmp_path):
        model_a, _ = model_paths
        with make_server(tmp_path, model=model_a) as server:
            with ScanClient(server.address) as client:
                token = client.ping()["config_token"]
                reply = client.reload(tmp_path / "missing.npz")
                assert reply["status"] == "error"
                assert client.ping()["config_token"] == token
                responses = client.scan_batch(
                    scan_requests(corpus[:2]))
        assert all(r["status"] == "ok" for r in responses)


class TestLifecycle:
    def test_shutdown_op_stops_the_server(self, detector, tmp_path):
        server = make_server(tmp_path, detector=detector).start()
        with ScanClient(server.address) as client:
            assert client.shutdown()["status"] == "ok"
        server.serve_forever()  # returns once stop() completes
        with pytest.raises(OSError):
            ScanClient(server.address, retry=None)
        server.stop()  # idempotent

    def test_requires_model_or_detector(self):
        with pytest.raises(ValueError, match="model"):
            ScanServer()

    def test_cached_rescan_is_marked(self, detector, corpus,
                                     tmp_path):
        with make_server(tmp_path, detector=detector) as server:
            with ScanClient(server.address) as client:
                cold = client.scan_batch(scan_requests(corpus[:4]))
                warm = client.scan_batch(scan_requests(corpus[:4]))
        assert all(not r["cached"] for r in cold)
        assert all(r["cached"] for r in warm)
        assert [r["verdict"] for r in warm] == \
            [r["verdict"] for r in cold]

    def test_duplicate_sources_under_different_names(
            self, detector, corpus, tmp_path):
        """Same source under two names must yield two verdicts with
        their own names (fingerprints differ by name)."""
        twin = replace(corpus[0], name=corpus[0].name + ".copy")
        with make_server(tmp_path, detector=detector) as server:
            with ScanClient(server.address) as client:
                responses = client.scan_batch(
                    scan_requests([corpus[0], twin]))
        first, second = (r["verdict"] for r in responses)
        assert first["name"] == corpus[0].name
        assert second["name"] == twin.name
        assert first["findings"] == second["findings"]
