"""Design ablation: gadget deduplication and mislabel auditing (Step II).

Two data-path choices DESIGN.md calls out:

* **Deduplication** — the paper de-duplicates merged corpora; this
  bench measures how many exact duplicates the synthetic corpus
  produces and that dedup does not change the class balance direction.
* **k-fold mislabel audit** — Step II's cross-validation check: plant
  label flips into the gadget dataset and confirm the auditor's recall
  on them, using a nearest-neighbour token classifier as the probe.
"""

import numpy as np

from repro.core.pipeline import extract_gadgets
from repro.slicing.labeling import MislabelAuditor

from conftest import run_once


def _token_overlap_classifier(train_x, train_y, test_x):
    """1-NN under Jaccard token-set similarity (cheap audit probe)."""
    train_sets = [frozenset(tokens) for tokens in train_x]
    predictions = []
    for tokens in test_x:
        probe = frozenset(tokens)
        best_score, best_label = -1.0, 0
        for candidate, label in zip(train_sets, train_y):
            union = len(probe | candidate)
            score = len(probe & candidate) / union if union else 0.0
            if score > best_score:
                best_score, best_label = score, label
        predictions.append(best_label)
    return predictions


def test_ablation_dedup_and_mislabel_audit(benchmark, reporter,
                                           train_cases):
    def experiment():
        raw = extract_gadgets(train_cases, deduplicate=False)
        deduped = extract_gadgets(train_cases, deduplicate=True)

        rng = np.random.default_rng(11)
        samples = [list(g.tokens) for g in deduped]
        labels = [g.label for g in deduped]
        flip_count = max(len(labels) // 25, 3)
        flipped = rng.choice(len(labels), size=flip_count,
                             replace=False)
        noisy = list(labels)
        for index in flipped:
            noisy[index] = 1 - noisy[index]

        auditor = MislabelAuditor(k=5, threshold=2, )
        suspicious = auditor.audit(samples, noisy,
                                   _token_overlap_classifier, rounds=2)
        caught = len(set(suspicious) & set(flipped.tolist()))
        return raw, deduped, flip_count, caught, len(suspicious)

    raw, deduped, planted, caught, reported = run_once(benchmark,
                                                       experiment)

    table = reporter("ablation_dedup_audit",
                     "Design ablation — dedup volume & Step II "
                     "mislabel audit")
    table.add(metric="raw gadgets", value=len(raw))
    table.add(metric="after dedup", value=len(deduped))
    table.add(metric="duplicates removed",
              value=len(raw) - len(deduped))
    table.add(metric="planted label flips", value=planted)
    table.add(metric="flips flagged by audit", value=caught)
    table.add(metric="total flagged", value=reported)
    table.save_and_print()

    # Dedup removes something (template corpora repeat shapes) but
    # never inflates the dataset.
    assert len(deduped) <= len(raw)
    # The audit achieves non-trivial recall on planted flips.
    assert caught >= planted // 2, (caught, planted)
