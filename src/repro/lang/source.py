"""Source-text helpers shared by the frontend.

The parser does not implement the C preprocessor; instead preprocessor
lines are blanked out *in place* so every remaining token keeps its
original line number — line numbers are load-bearing for slicing and for
Algorithm 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["strip_preprocessor", "SourceFile"]


def strip_preprocessor(source: str) -> str:
    """Blank out preprocessor directives while preserving line numbers.

    Handles line continuations (``\\`` at end of a directive line) by
    blanking every continued line as well.
    """
    out_lines: list[str] = []
    in_directive = False
    for raw in source.split("\n"):
        stripped = raw.lstrip()
        if in_directive or stripped.startswith("#"):
            in_directive = stripped.rstrip().endswith("\\")
            out_lines.append("")
        else:
            out_lines.append(raw)
    return "\n".join(out_lines)


@dataclass
class SourceFile:
    """A named piece of C source with convenient line access."""

    path: str
    text: str
    lines: list[str] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self.lines = self.text.split("\n")

    def line(self, number: int) -> str:
        """Return the 1-based source line, or '' when out of range."""
        if 1 <= number <= len(self.lines):
            return self.lines[number - 1]
        return ""

    def snippet(self, start: int, end: int) -> str:
        """Return lines ``start``..``end`` inclusive (1-based)."""
        return "\n".join(self.lines[max(0, start - 1) : end])
