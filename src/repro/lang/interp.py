"""Memory-safety-checking interpreter for the C subset.

Serves two roles in the reproduction:

* the execution substrate for the AFL simulacrum (coverage-guided
  fuzzing needs to *run* the target and observe crashes/hangs), and
* a ground-truth oracle: synthetic corpus programs can be executed to
  confirm that "vulnerable" variants really violate memory safety.

The machine model is deliberately simple — block/offset pointers with
bounds metadata (an idealised AddressSanitizer) — but the *detection
surface* matches what the paper's CWE families need: out-of-bounds
reads/writes, use-after-free, double free, NULL dereference, division
by zero, signed integer overflow events, and hang detection via a step
budget (how fuzzing exposes CVE-2016-9776's infinite loop).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from . import ast_nodes as A
from .parser import parse

__all__ = [
    "ViolationKind", "SafetyViolation", "Timeout", "ExecutionResult",
    "Pointer", "Interpreter", "run_program",
]

_INT_MIN = -(2 ** 31)
_INT_MAX = 2 ** 31 - 1


class ViolationKind(enum.Enum):
    OUT_OF_BOUNDS_WRITE = "out-of-bounds-write"
    OUT_OF_BOUNDS_READ = "out-of-bounds-read"
    USE_AFTER_FREE = "use-after-free"
    DOUBLE_FREE = "double-free"
    NULL_DEREFERENCE = "null-dereference"
    DIVISION_BY_ZERO = "division-by-zero"
    INTEGER_OVERFLOW = "integer-overflow"
    UNINITIALIZED_READ = "uninitialized-read"
    INVALID_FREE = "invalid-free"


class SafetyViolation(Exception):
    """A memory-safety violation detected during execution."""

    def __init__(self, kind: ViolationKind, line: int, detail: str = ""):
        super().__init__(f"{kind.value} at line {line}: {detail}")
        self.kind = kind
        self.line = line
        self.detail = detail


class Timeout(Exception):
    """Step budget exhausted — treated as a hang by the fuzzer."""

    def __init__(self, steps: int):
        super().__init__(f"execution exceeded {steps} steps")
        self.steps = steps


class _ReturnSignal(Exception):
    def __init__(self, value: Any):
        self.value = value


class _BreakSignal(Exception):
    pass


class _ContinueSignal(Exception):
    pass


class _GotoSignal(Exception):
    def __init__(self, label: str):
        self.label = label


class _ExitSignal(Exception):
    def __init__(self, code: int):
        self.code = code


@dataclass
class _Block:
    """One allocation: stack variable, heap chunk, or string literal."""

    id: int
    data: list[Any]
    freed: bool = False
    kind: str = "stack"  # 'stack' | 'heap' | 'literal' | 'global'
    name: str = ""


@dataclass(frozen=True)
class Pointer:
    """Block/offset fat pointer."""

    block: int
    offset: int = 0

    def moved(self, delta: int) -> "Pointer":
        return Pointer(self.block, self.offset + int(delta))


NULL_POINTER = Pointer(-1, 0)


def _is_null(value: Any) -> bool:
    """True for NULL pointers and integer zero."""
    if isinstance(value, Pointer):
        return value.block <= 0
    return not isinstance(value, _Struct) and int(value) == 0

_UNINIT = object()  # sentinel for uninitialized slots


@dataclass
class _Struct:
    fields: dict[str, Any] = field(default_factory=dict)


@dataclass
class ExecutionResult:
    """Outcome of one program execution."""

    ok: bool
    violation: Optional[SafetyViolation] = None
    timed_out: bool = False
    exit_code: int = 0
    output: str = ""
    coverage: frozenset[tuple[int, bool]] = frozenset()
    overflow_events: tuple[int, ...] = ()
    steps: int = 0

    @property
    def crashed(self) -> bool:
        return self.violation is not None

    @property
    def hung(self) -> bool:
        return self.timed_out


class Interpreter:
    """AST-walking interpreter with a fat-pointer memory model.

    Args:
        unit: parsed translation unit.
        stdin: bytes served to input-reading library calls.
        max_steps: statement budget before :class:`Timeout`.
        trap_overflow: when True, signed integer overflow raises a
            violation; when False it wraps (C behaviour) but is recorded
            in ``overflow_events``.
    """

    def __init__(self, unit: A.TranslationUnit, *, stdin: bytes = b"",
                 max_steps: int = 200_000, trap_overflow: bool = False):
        self.unit = unit
        self.functions = {f.name: f for f in unit.functions}
        self.blocks: dict[int, _Block] = {}
        self._next_block = 1
        self.stdin = bytearray(stdin)
        self.stdin_pos = 0
        self.output: list[str] = []
        self.max_steps = max_steps
        self.steps = 0
        self.trap_overflow = trap_overflow
        self.overflow_lines: list[int] = []
        self.coverage: set[tuple[int, bool]] = set()
        self.globals: dict[str, Any] = {}
        self._rand_state = 0x12345678
        for decl in unit.globals:
            for d in decl.declarators:
                self.globals[d.name] = self._initial_value(d, {}, decl.line)

    # -- memory ------------------------------------------------------------

    def _alloc(self, size: int, kind: str, name: str = "",
               fill: Any = _UNINIT) -> Pointer:
        block = _Block(self._next_block, [fill] * max(0, int(size)),
                       kind=kind, name=name)
        self.blocks[block.id] = block
        self._next_block += 1
        return Pointer(block.id, 0)

    def _block_for(self, ptr: Pointer, line: int) -> _Block:
        if ptr.block <= 0:
            raise SafetyViolation(ViolationKind.NULL_DEREFERENCE, line,
                                  "NULL pointer dereferenced")
        block = self.blocks.get(ptr.block)
        if block is None:
            raise SafetyViolation(ViolationKind.USE_AFTER_FREE, line,
                                  "dangling pointer")
        if block.freed:
            raise SafetyViolation(ViolationKind.USE_AFTER_FREE, line,
                                  f"use of freed block {block.name or block.id}")
        return block

    def load(self, ptr: Pointer, line: int) -> Any:
        block = self._block_for(ptr, line)
        if not 0 <= ptr.offset < len(block.data):
            raise SafetyViolation(
                ViolationKind.OUT_OF_BOUNDS_READ, line,
                f"read offset {ptr.offset} of block size {len(block.data)}")
        value = block.data[ptr.offset]
        if value is _UNINIT:
            return 0  # reading uninitialized memory yields 0 (benign)
        return value

    def store(self, ptr: Pointer, value: Any, line: int) -> None:
        block = self._block_for(ptr, line)
        if not 0 <= ptr.offset < len(block.data):
            raise SafetyViolation(
                ViolationKind.OUT_OF_BOUNDS_WRITE, line,
                f"write offset {ptr.offset} of block size {len(block.data)}")
        block.data[ptr.offset] = value

    def _free(self, ptr: Pointer, line: int) -> None:
        if ptr.block <= 0:
            return  # free(NULL) is a no-op
        block = self.blocks.get(ptr.block)
        if block is None:
            raise SafetyViolation(ViolationKind.INVALID_FREE, line,
                                  "free of unknown pointer")
        if block.freed:
            raise SafetyViolation(ViolationKind.DOUBLE_FREE, line,
                                  f"double free of block {block.id}")
        if block.kind != "heap":
            raise SafetyViolation(ViolationKind.INVALID_FREE, line,
                                  "free of non-heap pointer")
        block.freed = True

    def _string_block(self, text: str) -> Pointer:
        data: list[Any] = [ord(c) & 0xFF for c in text] + [0]
        block = _Block(self._next_block, data, kind="literal")
        self.blocks[block.id] = block
        self._next_block += 1
        return Pointer(block.id, 0)

    def _read_cstring(self, ptr: Pointer, line: int,
                      limit: int = 1 << 16) -> str:
        chars: list[str] = []
        cursor = ptr
        for _ in range(limit):
            value = self.load(cursor, line)
            if isinstance(value, Pointer):
                break
            code = int(value) & 0xFF
            if code == 0:
                break
            chars.append(chr(code))
            cursor = cursor.moved(1)
        return "".join(chars)

    # -- execution ---------------------------------------------------------

    def run(self, entry: str = "main",
            args: tuple[Any, ...] = ()) -> ExecutionResult:
        """Execute ``entry`` and package the outcome."""
        try:
            value = self.call_function(entry, list(args), line=0)
            code = int(value) if isinstance(value, (int, float)) else 0
            return self._result(ok=True, exit_code=code)
        except SafetyViolation as violation:
            return self._result(ok=False, violation=violation)
        except Timeout:
            return self._result(ok=False, timed_out=True)
        except _ExitSignal as signal:
            return self._result(ok=True, exit_code=signal.code)
        except RecursionError:
            return self._result(ok=False, timed_out=True)

    def _result(self, *, ok: bool,
                violation: SafetyViolation | None = None,
                timed_out: bool = False, exit_code: int = 0
                ) -> ExecutionResult:
        return ExecutionResult(
            ok=ok, violation=violation, timed_out=timed_out,
            exit_code=exit_code, output="".join(self.output),
            coverage=frozenset(self.coverage),
            overflow_events=tuple(self.overflow_lines), steps=self.steps)

    def call_function(self, name: str, args: list[Any], line: int) -> Any:
        fn = self.functions.get(name)
        if fn is None:
            return self._call_library(name, args, line)
        env: dict[str, Any] = {}
        for index, param in enumerate(fn.params):
            env[param.name] = args[index] if index < len(args) else 0
        try:
            self._exec_block(fn.body, env)
        except _ReturnSignal as signal:
            return signal.value
        return 0

    def _tick(self, line: int) -> None:
        self.steps += 1
        if self.steps > self.max_steps:
            raise Timeout(self.max_steps)

    def _exec_block(self, block: A.Block, env: dict[str, Any]) -> None:
        self._exec_stmts(block.stmts, env)

    def _exec_stmts(self, stmts: list[A.Stmt], env: dict[str, Any]) -> None:
        index = 0
        while index < len(stmts):
            stmt = stmts[index]
            try:
                self._exec_stmt(stmt, env)
            except _GotoSignal as signal:
                target = self._find_label(stmts, signal.label)
                if target is None:
                    raise
                index = target
                continue
            index += 1

    def _find_label(self, stmts: list[A.Stmt], label: str) -> int | None:
        for position, stmt in enumerate(stmts):
            if isinstance(stmt, A.Label) and stmt.name == label:
                return position
        return None

    def _exec_stmt(self, stmt: A.Stmt, env: dict[str, Any]) -> None:
        self._tick(stmt.line)
        if isinstance(stmt, A.Block):
            self._exec_stmts(stmt.stmts, env)
        elif isinstance(stmt, A.Decl):
            for d in stmt.declarators:
                env[d.name] = self._initial_value(d, env, stmt.line)
        elif isinstance(stmt, A.ExprStmt):
            self.eval(stmt.expr, env)
        elif isinstance(stmt, A.If):
            taken = self._truthy(self.eval(stmt.cond, env))
            self.coverage.add((stmt.line, taken))
            if taken:
                self._exec_stmt(stmt.then, env)
            elif stmt.otherwise is not None:
                self._exec_stmt(stmt.otherwise, env)
        elif isinstance(stmt, A.While):
            while True:
                taken = self._truthy(self.eval(stmt.cond, env))
                self.coverage.add((stmt.line, taken))
                if not taken:
                    break
                self._tick(stmt.line)
                try:
                    self._exec_stmt(stmt.body, env)
                except _BreakSignal:
                    break
                except _ContinueSignal:
                    continue
        elif isinstance(stmt, A.DoWhile):
            while True:
                self._tick(stmt.line)
                try:
                    self._exec_stmt(stmt.body, env)
                except _BreakSignal:
                    break
                except _ContinueSignal:
                    pass
                taken = self._truthy(self.eval(stmt.cond, env))
                self.coverage.add((stmt.while_line or stmt.line, taken))
                if not taken:
                    break
        elif isinstance(stmt, A.For):
            if stmt.init is not None:
                self._exec_stmt(stmt.init, env)
            while True:
                if stmt.cond is not None:
                    taken = self._truthy(self.eval(stmt.cond, env))
                    self.coverage.add((stmt.line, taken))
                    if not taken:
                        break
                self._tick(stmt.line)
                try:
                    self._exec_stmt(stmt.body, env)
                except _BreakSignal:
                    break
                except _ContinueSignal:
                    pass
                if stmt.step is not None:
                    self.eval(stmt.step, env)
        elif isinstance(stmt, A.Switch):
            self._exec_switch(stmt, env)
        elif isinstance(stmt, A.Break):
            raise _BreakSignal()
        elif isinstance(stmt, A.Continue):
            raise _ContinueSignal()
        elif isinstance(stmt, A.Return):
            value = self.eval(stmt.value, env) if stmt.value is not None \
                else 0
            raise _ReturnSignal(value)
        elif isinstance(stmt, A.Goto):
            raise _GotoSignal(stmt.label)
        elif isinstance(stmt, A.Label):
            self._exec_stmt(stmt.stmt, env)
        elif isinstance(stmt, A.Empty):
            pass
        else:  # pragma: no cover - parser produces no other statements
            raise NotImplementedError(type(stmt).__name__)

    def _exec_switch(self, stmt: A.Switch, env: dict[str, Any]) -> None:
        selector = self.eval(stmt.expr, env)
        matched = None
        default_index = None
        for index, case in enumerate(stmt.cases):
            if case.is_default:
                default_index = index
            elif matched is None and case.value is not None:
                if self.eval(case.value, env) == selector:
                    matched = index
        start = matched if matched is not None else default_index
        self.coverage.add((stmt.line, start is not None))
        if start is None:
            return
        try:
            for case in stmt.cases[start:]:
                self._exec_stmts(case.stmts, env)
        except _BreakSignal:
            pass

    def _initial_value(self, decl: A.Declarator, env: dict[str, Any],
                       line: int) -> Any:
        if decl.is_array:
            size = 0
            if decl.array_sizes and decl.array_sizes[0] is not None:
                size = int(self.eval(decl.array_sizes[0], env))
            init_items: list[Any] = []
            if isinstance(decl.init, A.InitList):
                init_items = [self.eval(item, env)
                              for item in decl.init.items]
            elif isinstance(decl.init, A.StringLit):
                text = decl.init.value
                init_items = [ord(c) & 0xFF for c in text] + [0]
            if size == 0:
                size = len(init_items)
            ptr = self._alloc(size, "stack", name=decl.name)
            block = self.blocks[ptr.block]
            for index, item in enumerate(init_items[:size]):
                block.data[index] = item
            if init_items:  # partially initialized arrays zero-fill in C
                for index in range(len(init_items), size):
                    block.data[index] = 0
            return ptr
        if decl.init is not None:
            value = self.eval(decl.init, env)
            if decl.is_pointer and isinstance(value, (int, float)) \
                    and int(value) == 0:
                return NULL_POINTER
            return value
        return NULL_POINTER if decl.is_pointer else 0

    # -- expressions ---------------------------------------------------------

    def _truthy(self, value: Any) -> bool:
        if isinstance(value, Pointer):
            return value.block > 0
        return bool(value)

    def _wrap_int(self, value: int, line: int) -> int:
        if _INT_MIN <= value <= _INT_MAX:
            return value
        self.overflow_lines.append(line)
        if self.trap_overflow:
            raise SafetyViolation(ViolationKind.INTEGER_OVERFLOW, line,
                                  f"value {value} out of int range")
        wrapped = (value - _INT_MIN) % (2 ** 32) + _INT_MIN
        return wrapped

    def eval(self, expr: A.Expr, env: dict[str, Any]) -> Any:
        if isinstance(expr, A.Number):
            return expr.value
        if isinstance(expr, A.StringLit):
            return self._string_block(expr.value)
        if isinstance(expr, A.CharLit):
            return expr.value
        if isinstance(expr, A.Ident):
            return self._load_name(expr.name, env, expr.line)
        if isinstance(expr, A.Assign):
            return self._eval_assign(expr, env)
        if isinstance(expr, A.Unary):
            return self._eval_unary(expr, env)
        if isinstance(expr, A.Binary):
            return self._eval_binary(expr, env)
        if isinstance(expr, A.Ternary):
            if self._truthy(self.eval(expr.cond, env)):
                return self.eval(expr.then, env)
            return self.eval(expr.otherwise, env)
        if isinstance(expr, A.Comma):
            self.eval(expr.left, env)
            return self.eval(expr.right, env)
        if isinstance(expr, A.Call):
            name = expr.callee_name
            args = [self.eval(a, env) for a in expr.args]
            if name is None:
                raise SafetyViolation(ViolationKind.NULL_DEREFERENCE,
                                      expr.line, "indirect call unsupported")
            return self.call_function(name, args, expr.line)
        if isinstance(expr, A.Index):
            ptr = self._pointer_to_element(expr, env)
            return self.load(ptr, expr.line)
        if isinstance(expr, A.Member):
            base = self.eval(expr.base, env)
            struct = self._struct_of(base, expr)
            return struct.fields.get(expr.name, 0)
        if isinstance(expr, A.Cast):
            value = self.eval(expr.expr, env)
            if isinstance(value, (int, float)) and int(value) == 0 \
                    and expr.type_name.endswith("*"):
                return NULL_POINTER
            return value
        if isinstance(expr, A.SizeOf):
            return self._eval_sizeof(expr, env)
        if isinstance(expr, A.InitList):
            return [self.eval(item, env) for item in expr.items]
        raise NotImplementedError(type(expr).__name__)  # pragma: no cover

    def _load_name(self, name: str, env: dict[str, Any], line: int) -> Any:
        if name == "NULL":
            return NULL_POINTER
        if name in ("true", "false"):
            return 1 if name == "true" else 0
        if name in env:
            value = env[name]
        elif name in self.globals:
            value = self.globals[name]
        else:
            return 0  # unknown identifiers read as 0 (extern constants)
        if isinstance(value, _Boxed):
            return self.load(value.ptr, line)
        return value

    def _struct_of(self, base: Any, expr: A.Member) -> _Struct:
        if isinstance(base, Pointer):
            if not expr.arrow and base.block > 0:
                # 's.f' where s is backed by a one-element struct block.
                value = self.load(base, expr.line)
                if isinstance(value, _Struct):
                    return value
            block = self._block_for(base, expr.line)
            if not 0 <= base.offset < len(block.data):
                raise SafetyViolation(ViolationKind.OUT_OF_BOUNDS_READ,
                                      expr.line, "struct access out of bounds")
            slot = block.data[base.offset]
            if not isinstance(slot, _Struct):
                slot = _Struct()
                block.data[base.offset] = slot
            return slot
        if isinstance(base, _Struct):
            return base
        raise SafetyViolation(ViolationKind.NULL_DEREFERENCE, expr.line,
                              "member access on non-struct")

    def _eval_sizeof(self, expr: A.SizeOf, env: dict[str, Any]) -> int:
        sizes = {"char": 1, "short": 2, "int": 4, "long": 8, "float": 4,
                 "double": 8, "void": 1}
        if isinstance(expr.arg, str):
            name = expr.arg.replace("unsigned", "").replace("signed", "")
            name = name.strip()
            if name.endswith("*"):
                return 8
            return sizes.get(name.split()[-1] if name else "int", 4)
        if isinstance(expr.arg, A.Ident):
            value = self._load_name(expr.arg.name, env, expr.line)
            if isinstance(value, Pointer) and value.block in self.blocks:
                return len(self.blocks[value.block].data)
        return 4

    def _lvalue(self, expr: A.Expr,
                env: dict[str, Any]) -> Callable[[Any], None]:
        """Return a setter closure for an lvalue expression."""
        if isinstance(expr, A.Ident):
            name = expr.name

            def set_name(value: Any) -> None:
                scope = env if (name in env or name not in self.globals) \
                    else self.globals
                current = scope.get(name)
                if isinstance(current, _Boxed):
                    self.store(current.ptr, value, expr.line)
                else:
                    scope[name] = value

            return set_name
        if isinstance(expr, A.Index):
            ptr = self._pointer_to_element(expr, env)
            return lambda value: self.store(ptr, value, expr.line)
        if isinstance(expr, A.Unary) and expr.op == "*":
            target = self.eval(expr.operand, env)
            if not isinstance(target, Pointer):
                raise SafetyViolation(ViolationKind.NULL_DEREFERENCE,
                                      expr.line, "deref of non-pointer")
            return lambda value: self.store(target, value, expr.line)
        if isinstance(expr, A.Member):
            base = self.eval(expr.base, env)
            struct = self._struct_of(base, expr)
            name = expr.name
            return lambda value: struct.fields.__setitem__(name, value)
        raise SafetyViolation(ViolationKind.NULL_DEREFERENCE, expr.line,
                              "unsupported lvalue")

    def _pointer_to_element(self, expr: A.Index,
                            env: dict[str, Any]) -> Pointer:
        base = self.eval(expr.base, env)
        index = self.eval(expr.index, env)
        if not isinstance(base, Pointer):
            raise SafetyViolation(ViolationKind.NULL_DEREFERENCE, expr.line,
                                  "indexing a non-pointer")
        if isinstance(index, Pointer):
            raise SafetyViolation(ViolationKind.NULL_DEREFERENCE, expr.line,
                                  "pointer used as index")
        return base.moved(int(index))

    def _eval_assign(self, expr: A.Assign, env: dict[str, Any]) -> Any:
        if expr.op == "=":
            value = self.eval(expr.value, env)
            self._lvalue(expr.target, env)(value)
            return value
        op = expr.op[:-1]
        current = self.eval(expr.target, env)
        rhs = self.eval(expr.value, env)
        value = self._binary_op(op, current, rhs, expr.line)
        self._lvalue(expr.target, env)(value)
        return value

    def _eval_unary(self, expr: A.Unary, env: dict[str, Any]) -> Any:
        op = expr.op
        if op == "&":
            return self._address_of(expr.operand, env)
        if op == "*":
            target = self.eval(expr.operand, env)
            if not isinstance(target, Pointer):
                raise SafetyViolation(ViolationKind.NULL_DEREFERENCE,
                                      expr.line, "deref of non-pointer")
            return self.load(target, expr.line)
        if op in ("++", "--"):
            current = self.eval(expr.operand, env)
            delta = 1 if op == "++" else -1
            if isinstance(current, Pointer):
                updated: Any = current.moved(delta)
            else:
                updated = self._wrap_int(int(current) + delta, expr.line)
            self._lvalue(expr.operand, env)(updated)
            return updated if expr.prefix else current
        value = self.eval(expr.operand, env)
        if op == "-":
            return self._wrap_int(-int(value), expr.line) \
                if isinstance(value, int) else -value
        if op == "+":
            return value
        if op == "!":
            return 0 if self._truthy(value) else 1
        if op == "~":
            return ~int(value)
        raise NotImplementedError(op)  # pragma: no cover

    def _address_of(self, expr: A.Expr, env: dict[str, Any]) -> Pointer:
        if isinstance(expr, A.Ident):
            # Promote the scalar variable into a one-slot block so the
            # pointer has somewhere to live; writes through the pointer
            # and direct variable accesses must stay coherent, so the
            # variable is rebound to a box-aware accessor: we store the
            # box pointer under a shadow key and keep both in sync via
            # the box itself being the storage.
            shadow = f"&{expr.name}"
            if shadow not in env:
                box = self._alloc(1, "stack", name=expr.name)
                self.store(box, env.get(expr.name, 0), expr.line)
                env[shadow] = box
                env[expr.name] = _Boxed(box)
            boxed = env[expr.name]
            if isinstance(boxed, _Boxed):
                return boxed.ptr
            return env[shadow]
        if isinstance(expr, A.Index):
            return self._pointer_to_element(expr, env)
        if isinstance(expr, A.Unary) and expr.op == "*":
            target = self.eval(expr.operand, env)
            if isinstance(target, Pointer):
                return target
        value = self.eval(expr, env)
        if isinstance(value, Pointer):
            return value
        raise SafetyViolation(ViolationKind.NULL_DEREFERENCE, expr.line,
                              "cannot take address")

    def _eval_binary(self, expr: A.Binary, env: dict[str, Any]) -> Any:
        op = expr.op
        if op == "&&":
            if not self._truthy(self.eval(expr.left, env)):
                return 0
            return 1 if self._truthy(self.eval(expr.right, env)) else 0
        if op == "||":
            if self._truthy(self.eval(expr.left, env)):
                return 1
            return 1 if self._truthy(self.eval(expr.right, env)) else 0
        left = self.eval(expr.left, env)
        right = self.eval(expr.right, env)
        return self._binary_op(op, left, right, expr.line)

    def _binary_op(self, op: str, left: Any, right: Any, line: int) -> Any:
        if isinstance(left, _Boxed):
            left = self.load(left.ptr, line)
        if isinstance(right, _Boxed):
            right = self.load(right.ptr, line)
        if isinstance(left, Pointer) or isinstance(right, Pointer):
            return self._pointer_arith(op, left, right, line)
        left_num = left if isinstance(left, float) else int(left)
        right_num = right if isinstance(right, float) else int(right)
        if op == "+":
            result = left_num + right_num
        elif op == "-":
            result = left_num - right_num
        elif op == "*":
            result = left_num * right_num
        elif op in ("/", "%"):
            if right_num == 0:
                raise SafetyViolation(ViolationKind.DIVISION_BY_ZERO, line,
                                      "division by zero")
            if isinstance(left_num, float) or isinstance(right_num, float):
                result = left_num / right_num if op == "/" \
                    else left_num % right_num
            else:
                quotient = abs(left_num) // abs(right_num)
                if (left_num < 0) != (right_num < 0):
                    quotient = -quotient
                result = quotient if op == "/" \
                    else left_num - quotient * right_num
        elif op == "<<":
            result = int(left_num) << (int(right_num) & 63)
        elif op == ">>":
            result = int(left_num) >> (int(right_num) & 63)
        elif op == "&":
            result = int(left_num) & int(right_num)
        elif op == "|":
            result = int(left_num) | int(right_num)
        elif op == "^":
            result = int(left_num) ^ int(right_num)
        elif op == "<":
            return 1 if left_num < right_num else 0
        elif op == ">":
            return 1 if left_num > right_num else 0
        elif op == "<=":
            return 1 if left_num <= right_num else 0
        elif op == ">=":
            return 1 if left_num >= right_num else 0
        elif op == "==":
            return 1 if left_num == right_num else 0
        elif op == "!=":
            return 1 if left_num != right_num else 0
        else:  # pragma: no cover
            raise NotImplementedError(op)
        if isinstance(result, int):
            return self._wrap_int(result, line)
        return result

    def _pointer_arith(self, op: str, left: Any, right: Any,
                       line: int) -> Any:
        if op == "+" and isinstance(left, Pointer):
            return left.moved(int(right))
        if op == "+" and isinstance(right, Pointer):
            return right.moved(int(left))
        if op == "-" and isinstance(left, Pointer) and \
                isinstance(right, Pointer):
            if left.block != right.block:
                return 0
            return left.offset - right.offset
        if op == "-" and isinstance(left, Pointer):
            return left.moved(-int(right))
        as_int = (lambda v: (v.block, v.offset) if isinstance(v, Pointer)
                  else (0, int(v)) if int(v) == 0 else (-2, int(v)))
        lk, rk = as_int(left), as_int(right)
        if op == "==":
            return 1 if lk == rk or (_is_null(left) and _is_null(right)) \
                else 0
        if op == "!=":
            return 0 if lk == rk else 1
        if op in ("<", ">", "<=", ">="):
            lo = left.offset if isinstance(left, Pointer) else int(left)
            ro = right.offset if isinstance(right, Pointer) else int(right)
            return self._binary_op(op, lo, ro, line)
        raise SafetyViolation(ViolationKind.NULL_DEREFERENCE, line,
                              f"invalid pointer arithmetic {op!r}")

    # -- library ------------------------------------------------------------

    def _call_library(self, name: str, args: list[Any], line: int) -> Any:
        handler = getattr(self, f"_lib_{name}", None)
        if handler is not None:
            return handler(args, line)
        return 0  # unknown externals are harmless no-ops returning 0

    #: Allocation cap: requests beyond this return NULL, modelling OOM
    #: (and keeping interpreter memory bounded under fuzzed inputs).
    MAX_ALLOC = 1 << 20

    def _lib_malloc(self, args: list[Any], line: int) -> Pointer:
        size = int(args[0]) if args else 0
        if size <= 0 or size > self.MAX_ALLOC:
            return NULL_POINTER
        return self._alloc(size, "heap", fill=0)

    def _lib_calloc(self, args: list[Any], line: int) -> Pointer:
        count = int(args[0]) if args else 0
        size = int(args[1]) if len(args) > 1 else 1
        total = count * size
        if total <= 0 or total > self.MAX_ALLOC:
            return NULL_POINTER
        return self._alloc(total, "heap", fill=0)

    def _lib_realloc(self, args: list[Any], line: int) -> Pointer:
        old = args[0] if args else NULL_POINTER
        size = int(args[1]) if len(args) > 1 else 0
        fresh = self._alloc(max(size, 0), "heap", fill=0)
        if isinstance(old, Pointer) and old.block > 0:
            old_block = self._block_for(old, line)
            new_block = self.blocks[fresh.block]
            for index in range(min(len(old_block.data),
                                   len(new_block.data))):
                new_block.data[index] = old_block.data[index]
            old_block.freed = True
        return fresh

    def _lib_free(self, args: list[Any], line: int) -> int:
        if args and isinstance(args[0], Pointer):
            self._free(args[0], line)
        return 0

    def _lib_strlen(self, args: list[Any], line: int) -> int:
        if not args or not isinstance(args[0], Pointer):
            return 0
        return len(self._read_cstring(args[0], line))

    def _copy_bytes(self, dest: Pointer, src: Pointer, count: int,
                    line: int) -> None:
        for index in range(count):
            value = self.load(src.moved(index), line)
            self.store(dest.moved(index), value, line)

    def _lib_memcpy(self, args: list[Any], line: int) -> Any:
        dest, src, count = args[0], args[1], int(args[2])
        if isinstance(dest, Pointer) and isinstance(src, Pointer):
            self._copy_bytes(dest, src, count, line)
        return dest

    _lib_memmove = _lib_memcpy

    def _lib_memset(self, args: list[Any], line: int) -> Any:
        dest, value, count = args[0], int(args[1]), int(args[2])
        if isinstance(dest, Pointer):
            for index in range(count):
                self.store(dest.moved(index), value & 0xFF, line)
        return dest

    def _lib_strcpy(self, args: list[Any], line: int) -> Any:
        dest, src = args[0], args[1]
        if isinstance(dest, Pointer) and isinstance(src, Pointer):
            text = self._read_cstring(src, line)
            for index, char in enumerate(text):
                self.store(dest.moved(index), ord(char), line)
            self.store(dest.moved(len(text)), 0, line)
        return dest

    def _lib_strncpy(self, args: list[Any], line: int) -> Any:
        dest, src, count = args[0], args[1], int(args[2])
        if isinstance(dest, Pointer) and isinstance(src, Pointer):
            text = self._read_cstring(src, line)
            for index in range(count):
                value = ord(text[index]) if index < len(text) else 0
                self.store(dest.moved(index), value, line)
        return dest

    def _lib_strcat(self, args: list[Any], line: int) -> Any:
        dest, src = args[0], args[1]
        if isinstance(dest, Pointer) and isinstance(src, Pointer):
            offset = len(self._read_cstring(dest, line))
            text = self._read_cstring(src, line)
            for index, char in enumerate(text):
                self.store(dest.moved(offset + index), ord(char), line)
            self.store(dest.moved(offset + len(text)), 0, line)
        return dest

    def _lib_strncat(self, args: list[Any], line: int) -> Any:
        dest, src, count = args[0], args[1], int(args[2])
        if isinstance(dest, Pointer) and isinstance(src, Pointer):
            offset = len(self._read_cstring(dest, line))
            text = self._read_cstring(src, line)[:count]
            for index, char in enumerate(text):
                self.store(dest.moved(offset + index), ord(char), line)
            self.store(dest.moved(offset + len(text)), 0, line)
        return dest

    def _lib_strcmp(self, args: list[Any], line: int) -> int:
        if len(args) < 2 or not all(isinstance(a, Pointer) for a in args[:2]):
            return 0
        a = self._read_cstring(args[0], line)
        b = self._read_cstring(args[1], line)
        return (a > b) - (a < b)

    def _lib_strncmp(self, args: list[Any], line: int) -> int:
        if len(args) < 3:
            return self._lib_strcmp(args, line)
        count = int(args[2])
        a = self._read_cstring(args[0], line)[:count]
        b = self._read_cstring(args[1], line)[:count]
        return (a > b) - (a < b)

    def _lib_gets(self, args: list[Any], line: int) -> Any:
        # gets: unbounded read — the canonical overflow source.
        dest = args[0]
        data = self._take_input_line()
        if isinstance(dest, Pointer):
            for index, byte in enumerate(data):
                self.store(dest.moved(index), byte, line)
            self.store(dest.moved(len(data)), 0, line)
        return dest

    def _lib_fgets(self, args: list[Any], line: int) -> Any:
        dest = args[0]
        limit = int(args[1]) if len(args) > 1 else 0
        data = self._take_input_line()[: max(limit - 1, 0)]
        if isinstance(dest, Pointer):
            for index, byte in enumerate(data):
                self.store(dest.moved(index), byte, line)
            self.store(dest.moved(len(data)), 0, line)
        return dest if data else NULL_POINTER

    def _lib_read(self, args: list[Any], line: int) -> int:
        dest = args[1] if len(args) > 1 else NULL_POINTER
        count = int(args[2]) if len(args) > 2 else 0
        data = self._take_input_bytes(count)
        if isinstance(dest, Pointer):
            for index, byte in enumerate(data):
                self.store(dest.moved(index), byte, line)
        return len(data)

    _lib_recv = _lib_read

    def _lib_atoi(self, args: list[Any], line: int) -> int:
        if not args or not isinstance(args[0], Pointer):
            return 0
        text = self._read_cstring(args[0], line).strip()
        sign = 1
        if text[:1] in ("+", "-"):
            sign = -1 if text[0] == "-" else 1
            text = text[1:]
        digits = ""
        for char in text:
            if char not in "0123456789":  # isdigit() admits U+00B2 etc.
                break
            digits += char
        return sign * int(digits) if digits else 0

    def _lib_printf(self, args: list[Any], line: int) -> int:
        rendered = self._format(args, line)
        self.output.append(rendered)
        return len(rendered)

    def _lib_fprintf(self, args: list[Any], line: int) -> int:
        return self._lib_printf(args[1:], line)

    def _lib_snprintf(self, args: list[Any], line: int) -> int:
        dest = args[0]
        limit = int(args[1]) if len(args) > 1 else 0
        rendered = self._format(args[2:], line)[: max(limit - 1, 0)]
        if isinstance(dest, Pointer):
            for index, char in enumerate(rendered):
                self.store(dest.moved(index), ord(char), line)
            self.store(dest.moved(len(rendered)), 0, line)
        return len(rendered)

    def _lib_sprintf(self, args: list[Any], line: int) -> int:
        dest = args[0]
        rendered = self._format(args[1:], line)
        if isinstance(dest, Pointer):
            for index, char in enumerate(rendered):
                self.store(dest.moved(index), ord(char), line)
            self.store(dest.moved(len(rendered)), 0, line)
        return len(rendered)

    def _lib_puts(self, args: list[Any], line: int) -> int:
        if args and isinstance(args[0], Pointer):
            self.output.append(self._read_cstring(args[0], line) + "\n")
        return 0

    def _lib_exit(self, args: list[Any], line: int) -> int:
        raise _ExitSignal(int(args[0]) if args else 0)

    def _lib_abort(self, args: list[Any], line: int) -> int:
        raise _ExitSignal(134)

    def _lib_rand(self, args: list[Any], line: int) -> int:
        # Deterministic LCG so executions are reproducible.
        self._rand_state = (self._rand_state * 1103515245 + 12345) \
            % (2 ** 31)
        return self._rand_state

    def _format(self, args: list[Any], line: int) -> str:
        if not args or not isinstance(args[0], Pointer):
            return ""
        fmt = self._read_cstring(args[0], line)
        values = list(args[1:])
        out: list[str] = []
        index = 0
        position = 0
        while position < len(fmt):
            char = fmt[position]
            if char != "%" or position + 1 >= len(fmt):
                out.append(char)
                position += 1
                continue
            position += 1
            # Skip width/flags.
            while position < len(fmt) and fmt[position] in "-+ 0123456789.l":
                position += 1
            if position >= len(fmt):
                break
            spec = fmt[position]
            position += 1
            if spec == "%":
                out.append("%")
                continue
            if index >= len(values) and spec in "sn":
                # %s/%n with no matching argument dereferences stack
                # garbage — the classic format-string crash.
                raise SafetyViolation(
                    ViolationKind.OUT_OF_BOUNDS_READ, line,
                    f"format conversion %{spec} has no argument")
            value = values[index] if index < len(values) else 0
            index += 1
            if spec in "dioux":
                out.append(str(int(value)
                               if not isinstance(value, Pointer)
                               else value.offset))
            elif spec == "c":
                out.append(chr(int(value) & 0xFF)
                           if not isinstance(value, Pointer) else "?")
            elif spec == "s":
                out.append(self._read_cstring(value, line)
                           if isinstance(value, Pointer) else str(value))
            elif spec in "feg":
                out.append(str(float(value)
                               if not isinstance(value, Pointer) else 0.0))
            elif spec == "p":
                out.append(f"0x{value.block:x}:{value.offset:x}"
                           if isinstance(value, Pointer) else "0x0")
            else:
                out.append(spec)
        return "".join(out)

    def _take_input_line(self) -> bytes:
        end = self.stdin.find(b"\n", self.stdin_pos)
        if end == -1:
            end = len(self.stdin)
        data = bytes(self.stdin[self.stdin_pos : end])
        self.stdin_pos = min(end + 1, len(self.stdin))
        return data

    def _take_input_bytes(self, count: int) -> bytes:
        data = bytes(self.stdin[self.stdin_pos : self.stdin_pos + count])
        self.stdin_pos += len(data)
        return data


@dataclass(frozen=True)
class _Boxed:
    """A scalar promoted to memory because its address was taken."""

    ptr: Pointer


def run_program(source: str, *, stdin: bytes = b"", entry: str = "main",
                max_steps: int = 200_000,
                trap_overflow: bool = False) -> ExecutionResult:
    """Parse and execute C source, returning the :class:`ExecutionResult`."""
    unit = parse(source)
    interp = Interpreter(unit, stdin=stdin, max_steps=max_steps,
                         trap_overflow=trap_overflow)
    return interp.run(entry=entry)
