"""Real-world-style corpus: Xen/QEMU device-emulator miniatures.

The paper's RQ3/RQ4 real-world study runs on eight Xen versions and
surfaces three vulnerabilities Xen inherited from QEMU (Table VII):

* **CVE-2016-9776** — ``mcf_fec.c``: the Ethernet controller emulator
  loops while ``size > 0`` but the per-iteration decrement comes from
  the guest-controlled ``s->emrbr`` register; zero means the loop never
  terminates (the Fig 6 case study).
* **CVE-2016-4453** — ``vmware_vga.c``: the FIFO run loop trusts a
  guest-controlled cursor delta, allowing an unbounded loop.
* **CVE-2016-9104** — ``9pfs/virtio-9p.c``: ``offset + count`` in the
  xattr bounds check overflows, bypassing the check and reading out of
  bounds.

Each miniature preserves the vulnerable code *shape* (loop structure,
guarded member accesses, the arithmetic of the broken check) inside a
program our frontend parses and our interpreter executes, so the same
pipeline that handles SARD cases handles these.
"""

from __future__ import annotations

import numpy as np

from .cwe_templates import TEMPLATES, generate_case
from .manifest import TestCase

__all__ = ["cve_2016_9776", "cve_2016_4453", "cve_2016_9104",
           "CVE_CASES", "generate_xen_corpus"]


def cve_2016_9776(*, vulnerable: bool = True) -> TestCase:
    """mcf_fec receive-loop hang (guest-controlled emrbr of zero)."""
    guard = "" if vulnerable else """\
    if (s->emrbr < 1) {
        s->emrbr = 1;
    }
"""
    source = f"""\
struct fec_state {{
    int emrbr;
    int rx_enabled;
    int descriptor;
}};

int fec_read_register(struct fec_state *s, int addr) {{
    if (addr == 0) {{
        return s->emrbr;
    }}
    return 0;
}}

void mcf_fec_receive(struct fec_state *s, char *buf, int size) {{
    int crc = 0;
    int flags = 0;
{guard}    while (size > 0) {{
        int emrbr = s->emrbr;
        int chunk = size;
        if (chunk > emrbr) {{
            chunk = emrbr;
        }}
        crc = crc + chunk;
        size = size - chunk;
        flags = flags + 1;
    }}
    printf("%d %d\\n", crc, flags);
}}

int main() {{
    struct fec_state st;
    struct fec_state *s = &st;
    char frame[64];
    fgets(frame, 64, 0);
    s->emrbr = atoi(frame);
    s->rx_enabled = 1;
    mcf_fec_receive(s, frame, 52);
    return 0;
}}
"""
    lines = source.split("\n")
    vulnerable_lines = frozenset(
        number for number, text in enumerate(lines, start=1)
        if "size = size - chunk;" in text
        or "int emrbr = s->emrbr;" in text) if vulnerable else frozenset()
    return TestCase(
        name="xen/net/mcf_fec.c" + ("" if vulnerable else "#patched"),
        source=source, vulnerable=vulnerable,
        vulnerable_lines=vulnerable_lines, cwe="CWE-835", category="AE",
        origin="xen", meta={"cve": "CVE-2016-9776"})


def cve_2016_4453(*, vulnerable: bool = True) -> TestCase:
    """vmware_vga FIFO run loop with a guest-controlled cursor delta."""
    guard = "" if vulnerable else """\
        if (advance < 1) {
            advance = 1;
        }
"""
    source = f"""\
struct vga_state {{
    int fifo_stop;
    int cursor_cmd;
}};

void vmsvga_fifo_run(struct vga_state *s, char *fifo, int stop) {{
    int cursor = 0;
    int commands = 0;
    while (cursor < stop) {{
        int advance = s->cursor_cmd;
{guard}        cursor = cursor + advance;
        commands = commands + 1;
    }}
    printf("%d\\n", commands);
}}

int main() {{
    struct vga_state st;
    struct vga_state *s = &st;
    char fifo[64];
    fgets(fifo, 64, 0);
    s->cursor_cmd = atoi(fifo);
    s->fifo_stop = 48;
    vmsvga_fifo_run(s, fifo, s->fifo_stop);
    return 0;
}}
"""
    lines = source.split("\n")
    vulnerable_lines = frozenset(
        number for number, text in enumerate(lines, start=1)
        if "cursor = cursor + advance;" in text
        or "int advance = s->cursor_cmd;" in text) if vulnerable \
        else frozenset()
    return TestCase(
        name="xen/display/vmware_vga.c" + ("" if vulnerable else "#patched"),
        source=source, vulnerable=vulnerable,
        vulnerable_lines=vulnerable_lines, cwe="CWE-835", category="AE",
        origin="xen", meta={"cve": "CVE-2016-4453"})


def cve_2016_9104(*, vulnerable: bool = True) -> TestCase:
    """9pfs xattr integer overflow bypassing the bounds check."""
    check = ("if (offset + count > 64)" if vulnerable
             else "if (offset > 64 || count > 64 - offset)")
    source = f"""\
void v9fs_xattr_read(char *xattr, int offset, int count) {{
    char value[64];
    memset(value, 0, 64);
    if (offset < 0) {{
        return;
    }}
    {check} {{
        return;
    }}
    int copied = 0;
    while (copied < count) {{
        value[offset + copied] = xattr[copied % 8];
        copied = copied + 1;
    }}
    printf("%d\\n", copied);
}}

int main() {{
    char request[64];
    fgets(request, 64, 0);
    int offset = atoi(request);
    v9fs_xattr_read(request, offset, 16);
    return 0;
}}
"""
    lines = source.split("\n")
    vulnerable_lines = frozenset(
        number for number, text in enumerate(lines, start=1)
        if "offset + count > 64" in text
        or "value[offset + copied]" in text) if vulnerable \
        else frozenset()
    return TestCase(
        name="xen/9pfs/virtio-9p.c" + ("" if vulnerable else "#patched"),
        source=source, vulnerable=vulnerable,
        vulnerable_lines=vulnerable_lines, cwe="CWE-190", category="AE",
        origin="xen", meta={"cve": "CVE-2016-9104"})


CVE_CASES = {
    "CVE-2016-9776": cve_2016_9776,
    "CVE-2016-4453": cve_2016_4453,
    "CVE-2016-9104": cve_2016_9104,
}


def generate_xen_corpus(count: int, seed: int = 0,
                        vulnerable_fraction: float = 0.35
                        ) -> list[TestCase]:
    """A Xen-flavoured evaluation corpus.

    Contains the three CVE miniatures (vulnerable + patched versions)
    plus template cases regenerated with origin='xen', emulating a
    harder real-software distribution (lower vulnerable rate, same
    template surface, *disjoint seeds* from the training corpora).
    """
    cases: list[TestCase] = []
    for build in CVE_CASES.values():
        cases.append(build(vulnerable=True))
        cases.append(build(vulnerable=False))
    rng = np.random.default_rng(seed ^ 0xE47)
    while len(cases) < count:
        template = TEMPLATES[int(rng.integers(0, len(TEMPLATES)))]
        vulnerable = bool(rng.random() < vulnerable_fraction)
        case_seed = 900_000_007 + seed * 50_021 + len(cases)
        cases.append(
            generate_case(template, vulnerable=vulnerable,
                          seed=case_seed, origin="xen",
                          case_name=f"xen/{template.name}"
                                    f"_{case_seed}.c"))
    return cases
