"""Table VI — real-world (Xen-like) corpus evaluation.

The three frameworks become one matrix column over the Xen-flavoured
corpus (a :class:`FixedCorpusAdapter` wrapping the historical seeds),
with bootstrap significance against VulDeePecker.  Paper shape: every
framework's precision drops sharply relative to the synthetic corpus
(real software is harder: paper P = 51.6/60.0/62.7); the ordering
VulDeePecker < SySeVR < SEVulDet on F1 holds (60.6 < 67.9 < 73.4).
"""

from repro.datasets.adapters import FixedCorpusAdapter
from repro.datasets.xen import generate_xen_corpus
from repro.eval.comparison import FRAMEWORKS, train_and_evaluate
from repro.eval.detector import FrameworkDetector
from repro.eval.matrix import MatrixRunner

from conftest import run_once

PAPER = {"VulDeePecker": (4.3, 26.7, 94.3, 51.6, 60.6),
         "SySeVR": (3.5, 19.8, 95.5, 60.0, 67.9),
         "SEVulDet": (3.3, 11.5, 96.2, 62.7, 73.4)}


def test_table6_realworld_xen(benchmark, reporter, scale, train_cases,
                              xen_train_cases):
    xen = generate_xen_corpus(
        max(scale.cases_per_experiment // 2, 30), seed=401)
    training = train_cases + xen_train_cases

    def experiment():
        detectors = [FrameworkDetector(name, scale, seed=37)
                     for name in PAPER]
        runner = MatrixRunner(
            detectors,
            [FixedCorpusAdapter("xen", training, xen)],
            baseline="VulDeePecker", seed=37, resamples=200)
        return runner.run()

    result = run_once(benchmark, experiment)

    for cell in result.cells:
        assert cell.ok, (cell.detector, cell.error)
    results = {name: result.cell(name, "xen").metrics
               for name in PAPER}

    table = reporter("table6_realworld",
                     "Table VI — pre-trained frameworks on the "
                     "Xen-like corpus")
    for framework, metrics in results.items():
        row = metrics.as_percentages()
        paper = PAPER[framework]
        table.add(work=framework, **row,
                  paper_FPR=paper[0], paper_FNR=paper[1],
                  paper_A=paper[2], paper_P=paper[3],
                  paper_F1=paper[4])
    table.save_and_print()

    # Parity gate: the SEVulDet cell equals the pre-refactor serial
    # path on the same seed.
    legacy, _ = train_and_evaluate(
        FRAMEWORKS["SEVulDet"], training, xen, scale, seed=37)
    assert results["SEVulDet"] == legacy

    # Shape: SEVulDet leads on F1; the full ordering holds with a
    # small tolerance for scaled-down noise.
    assert results["SEVulDet"].f1 >= results["SySeVR"].f1 - 0.02
    assert results["SEVulDet"].f1 >= \
        results["VulDeePecker"].f1 - 0.02
    assert results["SEVulDet"].f1 == max(m.f1 for m in
                                         results.values())
