#!/usr/bin/env python3
"""Run the detectors x datasets benchmark matrix and record it.

Writes machine-readable JSON to
``benchmarks/results/BENCH_matrix.json``::

    PYTHONPATH=src python scripts/bench_matrix.py          # full grid
    PYTHONPATH=src python scripts/bench_matrix.py --smoke  # CI-sized

Full mode runs the acceptance grid — SEVulDet, the SySeVR BRNN, four
classical scanners, and the fuzzer, across the SARD/NVD/Xen/Juliet/
CVEfixes adapters — with paired-bootstrap significance against
flawfinder per dataset.  The ``cells`` section of the JSON is the
regression-tracked artifact: adapters are deterministic in the seed,
detector seeds derive per cell, so reruns on one machine reproduce it
exactly (the ``timing`` section is environment-dependent and excluded
from that contract).

Two correctness gates run in every mode (CI asserts these, never
timings):

* **determinism** — a second, fresh run of a cheap sub-grid must
  produce byte-identical cell payloads (pins the regression-tracking
  contract).
* **parity** — one framework cell must equal the pre-refactor
  ``train_and_evaluate`` serial path on the same seed (the protocol
  refactor moved wiring, not numbers).  Smoke mode shrinks the corpus
  and epochs so this finishes in CI time.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.core.config import Scale, current_scale  # noqa: E402
from repro.core.engine import RunContext  # noqa: E402
from repro.datasets.adapters import (JulietAdapter,  # noqa: E402
                                     SardAdapter, default_adapters)
from repro.eval.comparison import (FRAMEWORKS,  # noqa: E402
                                   train_and_evaluate)
from repro.eval.detector import (FrameworkDetector,  # noqa: E402
                                 build_detector)
from repro.eval.matrix import MatrixRunner  # noqa: E402

RESULTS = ROOT / "benchmarks" / "results" / "BENCH_matrix.json"

FULL_DETECTORS = ("SEVulDet", "SySeVR", "flawfinder", "rats",
                  "checkmarx", "vuddy", "afl")
SMOKE_DETECTORS = ("flawfinder", "rats")

SMOKE_SCALE = Scale("smoke", cases_per_experiment=40, dim=8,
                    channels=8, hidden=8, epochs=6, batch_size=16,
                    time_steps=40, w2v_epochs=1)


def detector_factory(name: str, scale, seed: int, fuzz_execs: int):
    """A named zero-arg factory so every cell gets a fresh instance."""
    from repro.datasets.adapters import derive_seed

    class _Factory:
        def __init__(self, detector_name: str):
            self.name = detector_name

        def __call__(self):
            return build_detector(
                self.name, scale=scale,
                seed=derive_seed(seed, "cell", self.name),
                fuzz_execs=fuzz_execs)

    return _Factory(name)


def gate_determinism(adapters, seed: int) -> dict:
    """Two fresh runs of a cheap static-tool sub-grid must agree."""
    def run():
        runner = MatrixRunner(
            [detector_factory(name, None, seed, 50)
             for name in ("flawfinder", "rats")],
            adapters, baseline="flawfinder", seed=seed,
            resamples=100)
        result = runner.run()
        return [dict(cell.to_json(), significance=cell.significance)
                for cell in result.cells]

    first, second = run(), run()
    return {
        "identical": first == second,
        "cells_compared": len(first),
    }


def gate_parity(scale, seed: int) -> dict:
    """One SEVulDet cell vs the pre-refactor serial path."""
    adapter = SardAdapter(
        max(scale.cases_per_experiment // 2, 30),
        max(scale.cases_per_experiment // 4, 16))
    split = adapter.load(seed)
    detector = FrameworkDetector("SEVulDet", scale, seed=seed)
    ctx = RunContext.create()
    detector.fit(split.train, ctx)
    prediction = detector.predict(split.test, ctx)
    labels = [1 if case.vulnerable else 0 for case in split.test]
    matrix_metrics = prediction.metrics(labels)
    legacy_metrics, _ = train_and_evaluate(
        FRAMEWORKS["SEVulDet"], split.train, split.test, scale,
        seed=seed)
    return {
        "equal": matrix_metrics == legacy_metrics,
        "matrix_f1": matrix_metrics.f1,
        "legacy_f1": legacy_metrics.f1,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized: 2 detectors x 2 datasets, "
                             "tiny corpora, gates only")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--train-cases", type=int, default=None,
                        help="training programs per dataset "
                             "(default 100 full / 30 smoke)")
    parser.add_argument("--test-cases", type=int, default=None,
                        help="test programs per dataset "
                             "(default 50 full / 16 smoke)")
    parser.add_argument("--resamples", type=int, default=500)
    parser.add_argument("--fuzz-execs", type=int, default=150)
    parser.add_argument("--output", type=Path, default=RESULTS)
    args = parser.parse_args(argv)

    scale = SMOKE_SCALE if args.smoke else current_scale()
    train = args.train_cases if args.train_cases is not None \
        else (30 if args.smoke else 100)
    test = args.test_cases if args.test_cases is not None \
        else (16 if args.smoke else 50)
    adapters = default_adapters(train, test)
    if args.smoke:
        detector_names = SMOKE_DETECTORS
        dataset_names = ("sard", "juliet")
    else:
        detector_names = FULL_DETECTORS
        dataset_names = ("sard", "nvd", "xen", "juliet", "cvefixes")

    started = time.perf_counter()
    runner = MatrixRunner(
        [detector_factory(name, scale, args.seed, args.fuzz_execs)
         for name in detector_names],
        [adapters[name] for name in dataset_names],
        baseline="flawfinder", seed=args.seed,
        resamples=args.resamples,
        progress=lambda message: print(message, flush=True))
    result = runner.run()
    grid_seconds = time.perf_counter() - started
    print()
    print(result.leaderboard().render())

    errors = [cell for cell in result.cells if not cell.ok]
    determinism = gate_determinism(
        [SardAdapter(20, 12), JulietAdapter(16, 10)], args.seed)
    print(f"determinism gate: identical={determinism['identical']}")
    parity = gate_parity(SMOKE_SCALE if args.smoke else scale,
                         args.seed)
    print(f"parity gate: equal={parity['equal']} "
          f"(matrix F1 {parity['matrix_f1']:.3f})")

    report = {
        "benchmark": "matrix",
        "mode": "smoke" if args.smoke else "full",
        "dtype": os.environ.get("REPRO_DTYPE", "float32"),
        "scale": scale.name,
        "seed": args.seed,
        "counts": {"train": train, "test": test},
        "detectors": list(detector_names),
        "datasets": list(dataset_names),
        "fuzz_execs": args.fuzz_execs,
        "resamples": args.resamples,
        "note": ("'grid.cells' is deterministic per machine/seed and "
                 "regression-tracked; 'grid.timing' and "
                 "'grid_seconds' are environment-dependent"),
        "grid": result.to_json(),
        "grid_seconds": round(grid_seconds, 2),
        "cell_errors": len(errors),
        "gates": {"determinism": determinism, "parity": parity},
        "targets_met": {
            "no_cell_errors": not errors,
            "determinism": determinism["identical"],
            "parity": parity["equal"],
        },
    }
    args.output.parent.mkdir(parents=True, exist_ok=True)
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.output} ({grid_seconds:.1f}s grid)")

    if errors:
        for cell in errors:
            print(f"error cell {cell.detector} x {cell.dataset}: "
                  f"{cell.error}", file=sys.stderr)
        return 1
    if not determinism["identical"] or not parity["equal"]:
        print("error: correctness gate failed", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
