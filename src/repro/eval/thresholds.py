"""Score-threshold analysis: ROC, PR, and operating-point selection.

The paper fixes the decision threshold at 0.8 without showing the
trade-off curve; this module computes it, so the choice can be examined
(and the threshold re-derived for a new corpus): ROC points, the area
under the ROC, precision/recall points, and F1-optimal / target-FPR
operating points.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .metrics import Metrics, confusion_from, metrics_from

__all__ = ["OperatingPoint", "roc_points", "roc_auc",
           "precision_recall_points", "sweep_thresholds",
           "best_f1_threshold", "threshold_for_fpr"]


@dataclass(frozen=True)
class OperatingPoint:
    """Metrics of one threshold setting."""

    threshold: float
    metrics: Metrics


def _validate(scores: Sequence[float],
              labels: Sequence[int]) -> tuple[np.ndarray, np.ndarray]:
    scores_arr = np.asarray(scores, dtype=float)
    labels_arr = np.asarray(labels, dtype=int)
    if scores_arr.shape != labels_arr.shape:
        raise ValueError("scores and labels must align")
    if scores_arr.size == 0:
        raise ValueError("empty score set")
    return scores_arr, labels_arr


def roc_points(scores: Sequence[float], labels: Sequence[int]
               ) -> list[tuple[float, float]]:
    """(FPR, TPR) points swept over all distinct score thresholds,
    sorted by FPR, including the (0,0) and (1,1) endpoints."""
    scores_arr, labels_arr = _validate(scores, labels)
    positives = int(labels_arr.sum())
    negatives = len(labels_arr) - positives
    points = {(0.0, 0.0), (1.0, 1.0)}
    for threshold in np.unique(scores_arr):
        predicted = scores_arr >= threshold
        tp = int((predicted & (labels_arr == 1)).sum())
        fp = int((predicted & (labels_arr == 0)).sum())
        tpr = tp / positives if positives else 0.0
        fpr = fp / negatives if negatives else 0.0
        points.add((fpr, tpr))
    return sorted(points)


def roc_auc(scores: Sequence[float], labels: Sequence[int]) -> float:
    """Area under the ROC curve (trapezoidal over the swept points)."""
    points = roc_points(scores, labels)
    area = 0.0
    for (x0, y0), (x1, y1) in zip(points, points[1:]):
        area += (x1 - x0) * (y0 + y1) / 2.0
    return area


def precision_recall_points(scores: Sequence[float],
                            labels: Sequence[int]
                            ) -> list[tuple[float, float]]:
    """(recall, precision) points over all distinct thresholds."""
    scores_arr, labels_arr = _validate(scores, labels)
    positives = int(labels_arr.sum())
    points: list[tuple[float, float]] = []
    for threshold in np.unique(scores_arr):
        predicted = scores_arr >= threshold
        tp = int((predicted & (labels_arr == 1)).sum())
        fp = int((predicted & (labels_arr == 0)).sum())
        recall = tp / positives if positives else 0.0
        precision = tp / (tp + fp) if (tp + fp) else 1.0
        points.append((recall, precision))
    return sorted(points)


def sweep_thresholds(scores: Sequence[float], labels: Sequence[int],
                     thresholds: Sequence[float] | None = None
                     ) -> list[OperatingPoint]:
    """Full metric set per threshold (default: 0.05 grid)."""
    scores_arr, labels_arr = _validate(scores, labels)
    if thresholds is None:
        thresholds = np.round(np.arange(0.05, 1.0, 0.05), 2)
    results = []
    for threshold in thresholds:
        predicted = (scores_arr >= threshold).astype(int)
        metrics = metrics_from(
            confusion_from(predicted.tolist(), labels_arr.tolist()))
        results.append(OperatingPoint(float(threshold), metrics))
    return results


def best_f1_threshold(scores: Sequence[float],
                      labels: Sequence[int]) -> OperatingPoint:
    """Threshold maximising F1 over the distinct-score sweep."""
    scores_arr, labels_arr = _validate(scores, labels)
    best: OperatingPoint | None = None
    for threshold in np.unique(scores_arr):
        predicted = (scores_arr >= threshold).astype(int)
        metrics = metrics_from(
            confusion_from(predicted.tolist(), labels_arr.tolist()))
        if best is None or metrics.f1 > best.metrics.f1:
            best = OperatingPoint(float(threshold), metrics)
    assert best is not None
    return best


def threshold_for_fpr(scores: Sequence[float], labels: Sequence[int],
                      max_fpr: float) -> OperatingPoint:
    """Smallest threshold whose FPR stays at or below ``max_fpr``.

    Raises ValueError when even the most conservative threshold
    exceeds the budget (only possible with max_fpr < 0).
    """
    scores_arr, labels_arr = _validate(scores, labels)
    candidates = sorted(np.unique(scores_arr))
    for threshold in candidates:
        predicted = (scores_arr >= threshold).astype(int)
        metrics = metrics_from(
            confusion_from(predicted.tolist(), labels_arr.tolist()))
        if metrics.fpr <= max_fpr:
            return OperatingPoint(float(threshold), metrics)
    raise ValueError(f"no threshold achieves FPR <= {max_fpr}")
