"""Checkmarx simulacrum: rule-driven source-to-sink dataflow queries.

Commercial SAST engines run taint queries over a dependence graph:
attacker-controlled *sources* flowing into dangerous *sinks* without
passing a *sanitizer* are reported.  This implementation runs the same
scheme over our PDGs — genuinely better than the lexical scanners
(fewer false positives on guarded code) but still path-insensitive: a
guard that exists anywhere on the def-use chain counts as sanitization
regardless of branch placement, which is precisely the class of error
the paper's motivating example targets (and why Checkmarx sits between
the grep tools and the learned detectors in Fig 5).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..lang import ast_nodes as A
from ..lang.callgraph import AnalyzedProgram, analyze
from ..lang.cfg import NodeKind
from ..lang.parser import ParseError

__all__ = ["TaintFinding", "CheckmarxScanner",
           "TAINT_SOURCES", "TAINT_SINKS"]

#: Calls whose output is attacker-controlled.
TAINT_SOURCES = frozenset({"fgets", "gets", "read", "recv", "recvfrom",
                           "scanf", "fscanf", "getenv", "atoi", "strtol"})

#: Calls/operations dangerous under tainted operands: function -> which
#: argument indices matter (None = any).
TAINT_SINKS: dict[str, tuple[int, ...] | None] = {
    "strcpy": (1,), "strcat": (1,), "sprintf": None, "memcpy": (1, 2),
    "memmove": (1, 2), "strncpy": (2,), "strncat": (2,), "malloc": (0,),
    "alloca": (0,), "printf": (0,), "system": (0,), "popen": (0,),
    "free": (0,),
}


@dataclass(frozen=True)
class TaintFinding:
    """One source-to-sink flow."""

    function: str
    sink_line: int
    sink: str
    variable: str
    sanitized: bool


class CheckmarxScanner:
    """PDG-based taint-query engine.

    Args:
        report_sanitized: when True even guarded flows are reported
            (audit mode); default False reports only unsanitized flows.
        precision: ``"syntactic"`` (default — a condition mentioning a
            sink variable counts as sanitization, placement-blind) or
            ``"interval"`` — value-range analysis additionally
            discharges length-bounded sinks whose copy length is
            *provably* within the destination buffer at the sink, a
            strictly sounder sanitizer check.
    """

    name = "Checkmarx"

    #: sinks whose (dest_size, length_arg_index) pair the interval mode
    #: can check: length provably <= declared destination size.
    _BOUNDED_SINKS = {"strncpy": 2, "memcpy": 2, "memmove": 2,
                      "strncat": 2}

    def __init__(self, report_sanitized: bool = False,
                 precision: str = "syntactic"):
        if precision not in ("syntactic", "interval"):
            raise ValueError(f"unknown precision {precision!r}")
        self.report_sanitized = report_sanitized
        self.precision = precision

    def scan(self, source: str) -> list[TaintFinding]:
        try:
            program = analyze(source)
        except ParseError:
            return []
        findings: list[TaintFinding] = []
        for fn_name in program.function_names:
            findings.extend(self._scan_function(program, fn_name))
        if not self.report_sanitized:
            findings = [f for f in findings if not f.sanitized]
        return findings

    def flags(self, source: str) -> bool:
        return bool(self.scan(source))

    def _scan_function(self, program: AnalyzedProgram,
                       fn_name: str) -> list[TaintFinding]:
        pdg = program.pdg(fn_name)
        cfg = pdg.cfg
        # 1. Taint seeds: nodes calling a source, plus parameters of
        #    externally-callable functions (conservative, like CxQL's
        #    default "interactive input" group).
        tainted_nodes: set[int] = set()
        for node in cfg.statement_nodes():
            if pdg.def_use[node.id].called & TAINT_SOURCES:
                tainted_nodes.add(node.id)
        tainted_nodes.add(cfg.entry.id)  # parameters
        # 2. Propagate forward along data edges only.
        reached = pdg.forward_closure(tainted_nodes, control=False)
        # 3. Sanitizer approximation: a tainted node is "sanitized" when
        #    any condition node tests a variable that the sink also
        #    uses (flow-insensitive, placement-blind).
        guarded_vars: set[str] = set()
        for node in cfg.nodes.values():
            if node.kind in (NodeKind.CONDITION, NodeKind.SWITCH):
                guarded_vars |= pdg.def_use[node.id].uses
        intervals = None
        buffer_sizes: dict[str, int] = {}
        if self.precision == "interval":
            from ..lang.intervals import analyze_intervals
            intervals = analyze_intervals(cfg)
            buffer_sizes = self._declared_buffer_sizes(program, fn_name)
        findings: list[TaintFinding] = []
        for node in cfg.statement_nodes():
            if node.id not in reached:
                continue
            for callee in pdg.def_use[node.id].called:
                spec = TAINT_SINKS.get(callee)
                if callee not in TAINT_SINKS:
                    continue
                variables = self._sink_argument_vars(node.ast, callee,
                                                     spec)
                if not variables:
                    continue
                sanitized = bool(variables & guarded_vars)
                if intervals is not None and self._provably_bounded(
                        node, callee, intervals.get(node.id, {}),
                        buffer_sizes):
                    sanitized = True
                findings.append(
                    TaintFinding(fn_name, node.line, callee,
                                 ",".join(sorted(variables)), sanitized))
        return findings

    @staticmethod
    def _declared_buffer_sizes(program: AnalyzedProgram,
                               fn_name: str) -> dict[str, int]:
        """Constant-sized array declarations visible in the function."""
        fn = program.unit.function(fn_name)
        if fn is None:
            return {}
        sizes: dict[str, int] = {}
        for node in A.walk(fn.body):
            if isinstance(node, A.Decl):
                for decl in node.declarators:
                    if decl.is_array and decl.array_sizes and \
                            isinstance(decl.array_sizes[0], A.Number):
                        sizes[decl.name] = int(
                            decl.array_sizes[0].value)
        return sizes

    def _provably_bounded(self, node, callee: str, state,
                          buffer_sizes: dict[str, int]) -> bool:
        """True when the sink's length argument provably fits the
        destination buffer under the interval state at the sink."""
        from ..lang.intervals import interval_of_expr
        length_index = self._BOUNDED_SINKS.get(callee)
        if length_index is None or node.ast is None:
            return False
        for sub in A.walk(node.ast):
            if isinstance(sub, A.Call) and sub.callee_name == callee:
                if len(sub.args) <= length_index:
                    return False
                dest = sub.args[0]
                if not isinstance(dest, A.Ident):
                    return False
                size = buffer_sizes.get(dest.name)
                if size is None:
                    return False
                length = interval_of_expr(sub.args[length_index],
                                          state)
                return (not length.is_empty and length.lo >= 0
                        and length.hi <= size)
        return False

    @staticmethod
    def _sink_argument_vars(ast: A.Node | None, callee: str,
                            spec: tuple[int, ...] | None) -> set[str]:
        """Variables appearing in the sink's dangerous arguments."""
        if ast is None:
            return set()
        variables: set[str] = set()
        for node in A.walk(ast):
            if isinstance(node, A.Call) and node.callee_name == callee:
                indices = range(len(node.args)) if spec is None else spec
                for index in indices:
                    if index < len(node.args):
                        arg = node.args[index]
                        if isinstance(arg, A.StringLit):
                            continue  # constant arguments are safe
                        for sub in A.walk(arg):
                            if isinstance(sub, A.Ident) and \
                                    sub.name not in ("NULL",):
                                variables.add(sub.name)
        return variables
