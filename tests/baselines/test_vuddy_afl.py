"""Tests for the VUDDY clone detector and the AFL fuzzing simulacrum."""

import pytest

from repro.baselines.afl import AFLFuzzer
from repro.baselines.vuddy import VuddyScanner, abstract_function
from repro.datasets.xen import cve_2016_4453, cve_2016_9104, cve_2016_9776

VULN_FN = """\
void parse_header(char *data, int n) {
    char window[16];
    int cursor = 0;
    strcpy(window, data);
    cursor = cursor + n;
    printf("%d", cursor);
}
"""

RENAMED_CLONE = VULN_FN.replace("parse_header", "decode_frame") \
                       .replace("window", "scratch") \
                       .replace("cursor", "position")

PATCHED = VULN_FN.replace(
    "    strcpy(window, data);",
    "    if (strlen(data) < 16) {\n        strcpy(window, data);\n    }")


class TestVuddy:
    def test_exact_clone_detected(self):
        scanner = VuddyScanner()
        scanner.add_vulnerable(VULN_FN)
        assert scanner.flags(VULN_FN)

    def test_renamed_clone_detected(self):
        """Abstraction level 4 makes identifier renames invisible."""
        scanner = VuddyScanner()
        scanner.add_vulnerable(VULN_FN)
        assert scanner.flags(RENAMED_CLONE)

    def test_patched_function_not_matched(self):
        scanner = VuddyScanner()
        scanner.add_vulnerable(VULN_FN)
        assert not scanner.flags(PATCHED)

    def test_unrelated_code_not_matched(self):
        scanner = VuddyScanner()
        scanner.add_vulnerable(VULN_FN)
        assert not scanner.flags("int add(int a, int b) "
                                 "{ int t = a; t = t + b; "
                                 "t = t * 2; return t; }")

    def test_empty_database_flags_nothing(self):
        assert not VuddyScanner().flags(VULN_FN)

    def test_main_wrappers_excluded(self):
        harness = VULN_FN + ("int main() {\nchar l[64];\n"
                             "fgets(l, 64, 0);\nparse_header(l, 1);\n"
                             "return 0;\n}\n")
        other = ("void g(char *d) { printf(\"%s\", d); }\n"
                 "int main() {\nchar l[64];\nfgets(l, 64, 0);\n"
                 "g(l);\nreturn 0;\n}\n")
        scanner = VuddyScanner()
        scanner.add_vulnerable(harness)
        assert not scanner.flags(other)

    def test_abstraction_replaces_names(self):
        text = abstract_function(VULN_FN, 1, 7,
                                 frozenset({"data", "n"}),
                                 frozenset({"window", "cursor"}))
        assert "FPARAM" in text and "LVAR" in text and "DTYPE" in text
        assert "window" not in text

    def test_add_vulnerable_returns_count(self):
        scanner = VuddyScanner()
        assert scanner.add_vulnerable(VULN_FN) == 1
        assert scanner.add_vulnerable(VULN_FN) == 0  # duplicate


class TestAFL:
    def test_finds_planted_overflow(self):
        source = """\
int main() {
    char line[32];
    char buf[4];
    fgets(line, 32, 0);
    int n = atoi(line);
    if (n > 20) {
        buf[n] = 1;
    }
    return 0;
}
"""
        report = AFLFuzzer(source, max_execs=600, seed=1).run()
        assert any(c.kind == "out-of-bounds-write"
                   for c in report.crashes)

    def test_finds_hang(self):
        case = cve_2016_9776(vulnerable=True)
        report = AFLFuzzer(case.source, max_execs=500, max_steps=4000,
                           seed=1).run()
        assert report.hangs

    def test_finds_4453(self):
        case = cve_2016_4453(vulnerable=True)
        report = AFLFuzzer(case.source, max_execs=500, max_steps=4000,
                           seed=1).run()
        assert report.hangs

    def test_misses_magic_offset_9104(self):
        """The paper's observation: the special offset defeats fuzzing."""
        case = cve_2016_9104(vulnerable=True)
        report = AFLFuzzer(case.source, max_execs=800, max_steps=4000,
                           seed=1).run()
        assert not report.found_anything

    def test_clean_target_yields_nothing(self):
        source = """\
int main() {
    char line[32];
    fgets(line, 32, 0);
    int n = atoi(line);
    if (n > 4) { n = 4; }
    printf("%d", n);
    return 0;
}
"""
        report = AFLFuzzer(source, max_execs=400, seed=2).run()
        assert not report.found_anything
        assert report.executions == 400

    def test_coverage_grows(self):
        case = cve_2016_9104(vulnerable=True)
        fuzzer = AFLFuzzer(case.source, max_execs=300, max_steps=4000,
                           seed=3)
        report = fuzzer.run()
        assert len(report.coverage) >= 2
        assert report.queue_size >= 1

    def test_budget_respected(self):
        case = cve_2016_9104(vulnerable=True)
        report = AFLFuzzer(case.source, max_execs=123,
                           max_steps=4000, seed=3).run()
        assert report.executions <= 123

    def test_crash_dedup(self):
        source = """\
int main() {
    char line[8];
    char buf[2];
    fgets(line, 8, 0);
    buf[atoi(line) + 2] = 1;
    return 0;
}
"""
        report = AFLFuzzer(source, max_execs=400, seed=4).run()
        keys = [(c.kind, c.line) for c in report.crashes]
        assert len(keys) == len(set(keys))

    def test_deterministic_given_seed(self):
        case = cve_2016_9776(vulnerable=True)
        a = AFLFuzzer(case.source, max_execs=200, max_steps=3000,
                      seed=7).run()
        b = AFLFuzzer(case.source, max_execs=200, max_steps=3000,
                      seed=7).run()
        assert len(a.coverage) == len(b.coverage)
        assert bool(a.hangs) == bool(b.hangs)
