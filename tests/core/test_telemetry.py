"""Tests for the stage-instrumentation layer."""

from repro.core.telemetry import Telemetry


class TestCounters:
    def test_count_and_get(self):
        telemetry = Telemetry()
        assert telemetry.get("cases") == 0
        telemetry.count("cases")
        telemetry.count("cases", 4)
        assert telemetry.get("cases") == 5

    def test_independent_counters(self):
        telemetry = Telemetry()
        telemetry.count("a", 2)
        telemetry.count("b", 3)
        assert telemetry.get("a") == 2
        assert telemetry.get("b") == 3


class TestStages:
    def test_stage_accumulates_time_and_calls(self):
        telemetry = Telemetry()
        for _ in range(3):
            with telemetry.stage("parse"):
                pass
        assert telemetry.calls("parse") == 3
        assert telemetry.seconds("parse") >= 0.0

    def test_stage_records_on_exception(self):
        telemetry = Telemetry()
        try:
            with telemetry.stage("boom"):
                raise RuntimeError("x")
        except RuntimeError:
            pass
        assert telemetry.calls("boom") == 1

    def test_add_stage_direct(self):
        telemetry = Telemetry()
        telemetry.add_stage("slice", 1.5, calls=7)
        telemetry.add_stage("slice", 0.5, calls=3)
        assert telemetry.seconds("slice") == 2.0
        assert telemetry.calls("slice") == 10


class TestAggregation:
    def test_merge(self):
        a = Telemetry()
        a.count("hits", 1)
        a.add_stage("parse", 1.0, calls=2)
        b = Telemetry()
        b.count("hits", 2)
        b.count("misses", 5)
        b.add_stage("parse", 0.25, calls=1)
        a.merge(b)
        assert a.get("hits") == 3
        assert a.get("misses") == 5
        assert a.seconds("parse") == 1.25
        assert a.calls("parse") == 3

    def test_dict_roundtrip(self):
        a = Telemetry()
        a.count("hits", 4)
        a.add_stage("parse", 0.5, calls=2)
        restored = Telemetry().merge_dict(a.as_dict())
        assert restored.as_dict() == a.as_dict()

    def test_summary_lists_counters_and_stages(self):
        telemetry = Telemetry()
        telemetry.count("cache_hits", 9)
        telemetry.add_stage("analyze", 0.1)
        text = telemetry.summary()
        assert "cache_hits" in text and "9" in text
        assert "analyze" in text

    def test_summary_empty(self):
        assert "(empty)" in Telemetry().summary()


class TestThreadSafety:
    """Regression: one Telemetry is shared across scorer worker
    threads and the engine prefetch pump (via ScanService), but the
    read-modify-writes on its plain dicts used to be unlocked —
    concurrent increments were silently lost."""

    def test_concurrent_counts_are_exact(self):
        import sys
        import threading

        telemetry = Telemetry()
        threads_n, per_thread = 8, 20_000
        start = threading.Barrier(threads_n)

        def hammer():
            start.wait()
            for _ in range(per_thread):
                telemetry.count("hits")
                telemetry.count("batch", 3)

        workers = [threading.Thread(target=hammer)
                   for _ in range(threads_n)]
        old = sys.getswitchinterval()
        sys.setswitchinterval(1e-5)  # force frequent GIL switches
        try:
            for t in workers:
                t.start()
            for t in workers:
                t.join()
        finally:
            sys.setswitchinterval(old)
        assert telemetry.get("hits") == threads_n * per_thread
        assert telemetry.get("batch") == threads_n * per_thread * 3

    def test_concurrent_stages_and_observations_are_exact(self):
        import sys
        import threading

        telemetry = Telemetry()
        threads_n, per_thread = 8, 5_000
        start = threading.Barrier(threads_n)

        def hammer():
            start.wait()
            for _ in range(per_thread):
                telemetry.add_stage("scan", 1.0)
                telemetry.observe("depth", 1.0)

        workers = [threading.Thread(target=hammer)
                   for _ in range(threads_n)]
        old = sys.getswitchinterval()
        sys.setswitchinterval(1e-5)
        try:
            for t in workers:
                t.start()
            for t in workers:
                t.join()
        finally:
            sys.setswitchinterval(old)
        total = threads_n * per_thread
        assert telemetry.calls("scan") == total
        assert telemetry.seconds("scan") == float(total)
        from repro.core.telemetry import MAX_OBSERVATIONS
        samples = len(telemetry.observations["depth"])
        dropped = telemetry.get("observations_dropped")
        assert samples == MAX_OBSERVATIONS
        assert samples + dropped == total

    def test_pickle_roundtrip_excludes_lock(self):
        import pickle

        telemetry = Telemetry()
        telemetry.count("hits", 2)
        restored = pickle.loads(pickle.dumps(telemetry))
        assert restored.get("hits") == 2
        restored.count("hits")  # lock was rebuilt on unpickle
        assert restored.get("hits") == 3
