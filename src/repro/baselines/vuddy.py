"""VUDDY simulacrum: abstracted function fingerprinting.

VUDDY (Kim et al., S&P 2017) detects *vulnerable code clones*: known-
vulnerable functions are abstracted (parameters, locals, data types and
called function names replaced by placeholders), normalised, and hashed;
a target function matches when its fingerprint equals a database entry.
By construction it "can only detect vulnerabilities almost identical to
those in the training program, so it trades a high FNR for a low FPR"
(paper Section IV-E) — the behaviour Fig 5 plots.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from ..lang import ast_nodes as A
from ..lang.callgraph import analyze
from ..lang.dataflow import LIBRARY_FUNCTIONS
from ..lang.lexer import KEYWORDS, TokenKind, tokenize
from ..lang.parser import ParseError

__all__ = ["FunctionFingerprint", "abstract_function", "VuddyScanner"]


@dataclass(frozen=True)
class FunctionFingerprint:
    """Abstraction-level-4 fingerprint of one function body."""

    name: str
    length: int
    digest: str


def _function_spans(source: str) -> list[tuple[str, int, int]]:
    """(name, start_line, end_line) of each function definition."""
    try:
        program = analyze(source)
    except ParseError:
        return []
    spans = []
    for fn in program.unit.functions:
        spans.append((fn.name, fn.line, fn.body.end_line or fn.line))
    return spans


def abstract_function(source: str, start: int, end: int,
                      param_names: frozenset[str],
                      local_names: frozenset[str]) -> str:
    """VUDDY level-4 abstraction of the body text.

    Parameters -> FPARAM, locals -> LVAR, non-library callees -> FCALL,
    string literals -> "", numbers kept (they are part of the flaw
    shape), whitespace normalised.
    """
    lines = source.split("\n")[start - 1 : end]
    body = "\n".join(lines)
    tokens = tokenize(body)
    out: list[str] = []
    for index, token in enumerate(tokens):
        if token.kind is TokenKind.EOF:
            break
        if token.kind is TokenKind.IDENT:
            is_call = (index + 1 < len(tokens)
                       and tokens[index + 1].is_punct("("))
            if is_call and token.text not in LIBRARY_FUNCTIONS:
                out.append("FCALL")
            elif token.text in param_names:
                out.append("FPARAM")
            elif token.text in local_names:
                out.append("LVAR")
            else:
                out.append(token.text)
        elif token.kind is TokenKind.STRING:
            out.append('""')
        elif token.kind is TokenKind.KEYWORD and token.text in (
                "int", "char", "short", "long", "float", "double",
                "unsigned", "signed", "size_t"):
            out.append("DTYPE")
        else:
            out.append(token.text)
    return " ".join(out)


#: VUDDY skips functions whose abstracted body is shorter than 50
#: characters (the real tool's length filter); ``main`` wrappers are
#: also excluded — every harness main abstracts identically, which
#: would otherwise match every program against every other.
MIN_BODY_LENGTH = 50
_EXCLUDED_FUNCTIONS = frozenset({"main"})


def _fingerprints(source: str) -> list[FunctionFingerprint]:
    try:
        program = analyze(source)
    except ParseError:
        return []
    results: list[FunctionFingerprint] = []
    for fn in program.unit.functions:
        if fn.name in _EXCLUDED_FUNCTIONS:
            continue
        params = frozenset(p.name for p in fn.params if p.name)
        locals_: set[str] = set()
        for node in A.walk(fn.body):
            if isinstance(node, A.Decl):
                locals_.update(d.name for d in node.declarators)
        abstracted = abstract_function(
            program.source.text, fn.line, fn.body.end_line or fn.line,
            params, frozenset(locals_))
        if len(abstracted) < MIN_BODY_LENGTH:
            continue
        digest = hashlib.md5(abstracted.encode()).hexdigest()
        results.append(FunctionFingerprint(fn.name, len(abstracted),
                                           digest))
    return results


@dataclass
class VuddyScanner:
    """Fingerprint database + matcher.

    Build the database from known-vulnerable programs with
    :meth:`add_vulnerable`, then :meth:`flags` matches any function of
    the target against it (length pre-filter + hash equality, as the
    real tool does).
    """

    name: str = "VUDDY"
    database: dict[str, set[int]] = field(default_factory=dict)

    def add_vulnerable(self, source: str) -> int:
        """Fingerprint every function of a known-vulnerable program."""
        added = 0
        for fingerprint in _fingerprints(source):
            lengths = self.database.setdefault(fingerprint.digest, set())
            if fingerprint.length not in lengths:
                lengths.add(fingerprint.length)
                added += 1
        return added

    def matches(self, source: str) -> list[FunctionFingerprint]:
        """Functions of ``source`` whose fingerprint hits the DB."""
        return [
            fingerprint for fingerprint in _fingerprints(source)
            if fingerprint.length in
            self.database.get(fingerprint.digest, set())
        ]

    def flags(self, source: str) -> bool:
        return bool(self.matches(source))
