"""Parallel fan-out and content-addressed caching of extract_gadgets.

The contract under test: no matter how the per-case work is scheduled
(serial, process pool, cold cache, warm cache), the returned
LabeledGadget list is identical, and the telemetry counters expose
exactly what was computed versus served from cache.
"""

import pytest

from repro.core.cache import GadgetCache
from repro.core.pipeline import extract_gadgets
from repro.core.telemetry import Telemetry
from repro.datasets.manifest import TestCase
from repro.datasets.sard import generate_sard_corpus

BROKEN_CASE = TestCase("broken.c", "not C at all {{{", False,
                       frozenset(), "", "FC")


@pytest.fixture(scope="module")
def corpus():
    return generate_sard_corpus(10, seed=33)


@pytest.fixture(scope="module")
def serial(corpus):
    return extract_gadgets(corpus)


class TestParallel:
    def test_parallel_matches_serial(self, corpus, serial):
        parallel = extract_gadgets(corpus, workers=2)
        assert parallel == serial

    def test_parallel_no_dedup_matches_serial(self, corpus):
        raw_serial = extract_gadgets(corpus, deduplicate=False)
        raw_parallel = extract_gadgets(corpus, deduplicate=False,
                                       workers=2)
        assert raw_parallel == raw_serial

    def test_workers_one_is_serial_path(self, corpus, serial):
        assert extract_gadgets(corpus, workers=1) == serial

    def test_parallel_skips_unparseable(self, corpus, serial):
        telemetry = Telemetry()
        mixed = [BROKEN_CASE] + list(corpus)
        result = extract_gadgets(mixed, workers=2, telemetry=telemetry)
        assert result == serial
        assert telemetry.get("cases_skipped") == 1
        assert telemetry.get("cases_parsed") == len(corpus)


class TestTelemetryCounters:
    def test_serial_counters(self, corpus, serial):
        telemetry = Telemetry()
        extract_gadgets(corpus, telemetry=telemetry)
        assert telemetry.get("cases_total") == len(corpus)
        assert telemetry.get("cases_parsed") == len(corpus)
        assert telemetry.get("cases_skipped") == 0
        assert telemetry.get("gadgets_emitted") == len(serial)
        assert telemetry.get("gadgets_extracted") == \
            len(serial) + telemetry.get("dedup_hits")
        assert telemetry.calls("analyze") == len(corpus)
        assert telemetry.seconds("extract") > 0.0

    def test_skip_logged(self, caplog):
        with caplog.at_level("WARNING", logger="repro.core.pipeline"):
            extract_gadgets([BROKEN_CASE])
        assert any("skipped 1/1" in record.getMessage()
                   for record in caplog.records)

    def test_caller_telemetry_accumulates(self, corpus):
        telemetry = Telemetry()
        extract_gadgets(corpus, telemetry=telemetry)
        extract_gadgets(corpus, telemetry=telemetry)
        assert telemetry.get("cases_parsed") == 2 * len(corpus)


class TestCache:
    def test_cold_then_warm(self, corpus, serial, tmp_path):
        cold, warm = Telemetry(), Telemetry()
        first = extract_gadgets(corpus, cache=tmp_path / "cache",
                                telemetry=cold)
        second = extract_gadgets(corpus, cache=tmp_path / "cache",
                                 telemetry=warm)
        assert first == serial
        assert second == serial
        assert cold.get("cache_misses") == len(corpus)
        assert cold.get("cache_hits") == 0
        assert warm.get("cache_hits") == len(corpus)
        assert warm.get("cache_misses") == 0
        # zero frontend re-analysis on the warm run
        assert warm.calls("analyze") == 0
        assert warm.calls("slice") == 0
        assert warm.calls("normalize") == 0

    def test_cache_with_workers(self, corpus, serial, tmp_path):
        telemetry = Telemetry()
        first = extract_gadgets(corpus, workers=2,
                                cache=tmp_path / "cache")
        second = extract_gadgets(corpus, workers=2,
                                 cache=tmp_path / "cache",
                                 telemetry=telemetry)
        assert first == serial and second == serial
        assert telemetry.get("cache_hits") == len(corpus)

    def test_cache_keyed_by_config(self, corpus, tmp_path):
        cache = GadgetCache(tmp_path / "cache")
        extract_gadgets(corpus, kind="path-sensitive", cache=cache)
        telemetry = Telemetry()
        classic = extract_gadgets(corpus, kind="classic", cache=cache,
                                  telemetry=telemetry)
        assert telemetry.get("cache_misses") == len(corpus)
        assert all(g.kind == "classic" for g in classic)

    def test_cache_keyed_by_content(self, corpus, tmp_path):
        cache = GadgetCache(tmp_path / "cache")
        extract_gadgets(corpus, cache=cache)
        edited = [TestCase(c.name, c.source + "\n", c.vulnerable,
                           c.vulnerable_lines, c.cwe, c.category,
                           c.origin)
                  for c in corpus]
        telemetry = Telemetry()
        extract_gadgets(edited, cache=cache, telemetry=telemetry)
        assert telemetry.get("cache_hits") == 0

    def test_parse_failures_not_cached(self, tmp_path):
        cache = GadgetCache(tmp_path / "cache")
        first, second = Telemetry(), Telemetry()
        extract_gadgets([BROKEN_CASE], cache=cache, telemetry=first)
        extract_gadgets([BROKEN_CASE], cache=cache, telemetry=second)
        assert len(cache) == 0
        assert second.get("cache_hits") == 0
        assert second.get("cases_skipped") == 1

    def test_keep_gadget_bypasses_cache(self, corpus, tmp_path):
        telemetry = Telemetry()
        kept = extract_gadgets(corpus[:2], keep_gadget=True,
                               cache=tmp_path / "cache",
                               telemetry=telemetry)
        assert all(g.gadget is not None for g in kept)
        assert telemetry.get("cache_hits") == 0
        assert telemetry.get("cache_misses") == 0
        assert len(GadgetCache(tmp_path / "cache")) == 0

    def test_corrupt_shard_is_a_miss(self, corpus, serial, tmp_path):
        cache = GadgetCache(tmp_path / "cache")
        extract_gadgets(corpus, cache=cache)
        for shard in sorted((tmp_path / "cache").glob("*/*.jsonl")):
            shard.write_text("not json\n")
        telemetry = Telemetry()
        result = extract_gadgets(corpus, cache=cache,
                                 telemetry=telemetry)
        assert result == serial
        assert telemetry.get("cache_misses") == len(corpus)


class TestGadgetCacheUnit:
    def test_len_and_clear(self, corpus, tmp_path):
        cache = GadgetCache(tmp_path / "cache")
        assert len(cache) == 0
        extract_gadgets(corpus, cache=cache)
        assert len(cache) == len(corpus)
        assert cache.clear() == len(corpus)
        assert len(cache) == 0

    def test_contains(self, corpus, tmp_path):
        cache = GadgetCache(tmp_path / "cache")
        key = cache.key_for(corpus[0], "kind=path-sensitive")
        assert key not in cache
        cache.put(key, [])
        assert key in cache
        assert cache.get(key) == []
