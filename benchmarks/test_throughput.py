"""Pipeline-kernel throughput benchmarks (regression guardrails).

Unlike the table/figure benches (one-shot experiments), these are
classic multi-round pytest-benchmark timings of the hot kernels:
frontend analysis, gadget extraction, normalization, and model
forward passes at several sequence lengths.
"""

import numpy as np
import pytest

from repro.core.pipeline import extract_gadgets
from repro.datasets.cwe_templates import TEMPLATES, generate_case
from repro.lang.callgraph import analyze
from repro.models.blstm import BLSTMNet
from repro.models.sevuldet import SEVulDetNet
from repro.nn import no_grad
from repro.slicing.normalize import normalize_gadget
from repro.slicing.path_sensitive import path_sensitive_gadget
from repro.slicing.special_tokens import find_special_tokens


@pytest.fixture(scope="module")
def sample_case():
    return generate_case(TEMPLATES[0], vulnerable=True, seed=5)


@pytest.fixture(scope="module")
def sample_program(sample_case):
    return analyze(sample_case.source, path=sample_case.name)


def test_frontend_analyze_throughput(benchmark, sample_case):
    """Full frontend: parse -> CFG -> dependences -> PDG -> call graph."""
    result = benchmark(analyze, sample_case.source)
    assert result.function_names


def test_path_sensitive_gadget_throughput(benchmark, sample_program):
    criterion = [c for c in find_special_tokens(sample_program)
                 if c.token == "strcpy"][0]
    gadget = benchmark(path_sensitive_gadget, sample_program, criterion)
    assert gadget.lines


def test_normalization_throughput(benchmark, sample_program):
    criterion = [c for c in find_special_tokens(sample_program)
                 if c.token == "strcpy"][0]
    gadget = path_sensitive_gadget(sample_program, criterion)
    normalized = benchmark(normalize_gadget, gadget)
    assert normalized.tokens


def test_extract_gadgets_per_case_throughput(benchmark, sample_case):
    gadgets = benchmark(extract_gadgets, [sample_case])
    assert gadgets


@pytest.fixture(scope="module")
def extraction_corpus():
    from repro.datasets.sard import generate_sard_corpus
    return generate_sard_corpus(8, seed=11)


def test_extract_gadgets_parallel_throughput(benchmark,
                                             extraction_corpus):
    """Process-pool fan-out including pool startup cost."""
    serial = extract_gadgets(extraction_corpus)
    gadgets = benchmark(extract_gadgets, extraction_corpus, workers=2)
    assert gadgets == serial


def test_extract_gadgets_warm_cache_throughput(benchmark,
                                               extraction_corpus,
                                               tmp_path_factory):
    """Warm-cache rerun: every case served without frontend work."""
    from repro.core.telemetry import Telemetry

    cache_dir = tmp_path_factory.mktemp("gadget-cache")
    serial = extract_gadgets(extraction_corpus)
    extract_gadgets(extraction_corpus, cache=cache_dir)  # fill

    telemetry = Telemetry()

    def warm_run():
        return extract_gadgets(extraction_corpus, cache=cache_dir,
                               telemetry=telemetry)

    gadgets = benchmark(warm_run)
    assert gadgets == serial
    assert telemetry.get("cache_misses") == 0
    assert telemetry.get("cache_hits") > 0
    assert telemetry.calls("analyze") == 0


@pytest.mark.parametrize("length", [32, 128, 512])
def test_sevuldet_forward_throughput(benchmark, length):
    """Flexible-length forward pass cost vs sequence length."""
    model = SEVulDetNet(vocab_size=200, dim=16, channels=16, seed=0)
    model.eval()
    ids = np.random.default_rng(0).integers(0, 200, size=(16, length))

    def forward():
        with no_grad():
            return model(ids)

    logits = benchmark(forward)
    assert logits.shape == (16,)


def test_blstm_forward_throughput(benchmark):
    """Fixed-length BRNN forward pass (the baseline cost profile)."""
    model = BLSTMNet(vocab_size=200, dim=16, hidden=16, time_steps=80,
                     seed=0)
    model.eval()
    ids = np.random.default_rng(0).integers(0, 200, size=(16, 80))

    def forward():
        with no_grad():
            return model(ids)

    logits = benchmark(forward)
    assert logits.shape == (16,)
