"""Command-line interface: train, scan, and fuzz from the shell.

::

    python -m repro train --cases 200 --out detector.npz
    python -m repro scan target.c --model detector.npz
    python -m repro serve --model detector.npz --socket /tmp/scan.sock
    python -m repro scan target.c --connect /tmp/scan.sock
    python -m repro fuzz target.c --execs 800
    python -m repro gadgets target.c --kind path-sensitive
    python -m repro extract --cases 200 --workers 4 --out gadgets.jsonl
    python -m repro matrix --detectors SEVulDet flawfinder --datasets sard juliet --out runs/matrix
    python -m repro export-corpus --cases 100 --dir ./corpus
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .baselines.afl import AFLFuzzer
from .core.config import SCALE_PRESETS, current_scale
from .core.detector import SEVulDet
from .core.engine import Engine, ExtractStage, RunContext
from .core.extract import extract_gadgets
from .datasets.manifest import TestCase
from .datasets.nvd import generate_nvd_corpus
from .datasets.sard import generate_sard_corpus

__all__ = ["main", "build_parser"]


def _prepare_quarantine(args: argparse.Namespace):
    """Build the Quarantine from ``--quarantine`` and its policy
    flags: ``--quarantine-retry-after`` arms the retry budget and
    ``--requarantine`` drops every entry up front (still-failing
    cases re-enter during the run)."""
    from .core.resilience import Quarantine

    path = getattr(args, "quarantine", None)
    if path is None:
        return None
    quarantine = Quarantine(
        path,
        retry_after=getattr(args, "quarantine_retry_after", None))
    if getattr(args, "requarantine", False):
        dropped = quarantine.reset()
        print(f"requarantine: dropped {dropped} entry(ies) from "
              f"{path}; failing cases will re-enter")
    return quarantine


def _run_context(args: argparse.Namespace, *,
                 workers: int = 0) -> RunContext:
    """One RunContext from the shared cache/quarantine/fault flags.

    Every subcommand funnels its ``--cache-dir`` / ``--quarantine`` /
    ``--case-timeout`` (and, where applicable, ``--checkpoint-dir`` /
    ``--resume``) flags through here instead of wiring each into every
    call site; ``workers`` is explicit because ``scan --workers``
    means scorer threads, not extraction processes.
    """
    return RunContext.create(
        cache=getattr(args, "cache_dir", None),
        quarantine=_prepare_quarantine(args),
        case_timeout=getattr(args, "case_timeout", None),
        checkpoint_dir=getattr(args, "checkpoint_dir", None),
        resume=bool(getattr(args, "resume", False)),
        workers=workers)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SEVulDet reproduction — semantics-enhanced "
                    "learnable vulnerability detection")
    parser.add_argument("--scale", choices=sorted(SCALE_PRESETS),
                        default=None,
                        help="experiment scale preset "
                             "(default: $REPRO_SCALE or 'small')")
    commands = parser.add_subparsers(dest="command", required=True)

    train = commands.add_parser(
        "train", help="train a detector on a synthetic corpus")
    train.add_argument("--cases", type=int, default=150,
                       help="number of SARD-style training programs")
    train.add_argument("--nvd-cases", type=int, default=20,
                       help="number of NVD-style training programs")
    train.add_argument("--seed", type=int, default=7)
    train.add_argument("--out", type=Path, required=True,
                       help="where to save the trained model (.npz)")
    train.add_argument("--workers", type=int, default=0,
                       help="extraction worker processes "
                            "(0 = serial, default)")
    train.add_argument("--cache-dir", type=Path, default=None,
                       help="content-addressed extraction cache "
                            "directory (reruns skip the frontend)")
    train.add_argument("--case-timeout", type=float, default=None,
                       help="per-case extraction wall-clock budget in "
                            "seconds; hanging cases are skipped and "
                            "quarantined instead of wedging the run")
    train.add_argument("--quarantine", type=Path, default=None,
                       help="poison-case quarantine list (.jsonl); "
                            "known-bad cases are skipped cheaply and "
                            "new timeouts/crashes are appended")
    train.add_argument("--checkpoint-dir", type=Path, default=None,
                       help="write an atomic training checkpoint "
                            "after every epoch so an interrupted run "
                            "can be resumed")
    train.add_argument("--resume", action="store_true",
                       help="resume training from the checkpoint in "
                            "--checkpoint-dir (same final weights as "
                            "an uninterrupted run)")
    train.add_argument("--stats", action="store_true",
                       help="print pipeline telemetry (stage timings, "
                            "counters, training throughput rates)")

    scan = commands.add_parser(
        "scan",
        help="scan C files / directories with a trained detector "
             "(persistent batched service)")
    scan.add_argument("files", nargs="+", type=Path,
                      help="C files or directories (directories "
                           "recurse over *.c)")
    scan.add_argument("--model", type=Path, default=None,
                      help="trained model archive (.npz); runs "
                           "the scan in-process")
    scan.add_argument("--connect", default=None, metavar="ADDR",
                      help="scan via a running 'serve' daemon at "
                           "this unix socket path or host:port "
                           "instead of loading a model")
    scan.add_argument("--threshold", type=float, default=None,
                      help="override the decision threshold "
                           "(default: the paper's 0.8, stored in the "
                           "model archive)")
    scan.add_argument("--workers", type=int, default=2,
                      help="scoring worker threads (default 2)")
    scan.add_argument("--batch-size", type=int, default=64,
                      help="micro-batch size for gadget scoring")
    scan.add_argument("--dtype",
                      choices=("float32", "float16", "int8"),
                      default="float32",
                      help="inference weight representation: float16 "
                           "halves the weight payload, int8 quantizes "
                           "weight matrices per tensor; the accuracy "
                           "cost is measured on a held-out calibration "
                           "corpus and printed (default: float32, the "
                           "training precision)")
    scan.add_argument("--calibration-cases", type=int, default=24,
                      help="held-out synthetic programs used to "
                           "measure the quantization guardband when "
                           "--dtype is reduced (default 24)")
    scan.add_argument("--jsonl", type=Path, default=None,
                      help="write one JSON record per case (verdicts; "
                           "in --diff/--watch mode: verdict deltas) "
                           "to this file, streamed in input order")
    scan.add_argument("--diff", type=Path, default=None,
                      metavar="BASE",
                      help="incremental mode: BASE is either a "
                           "baseline tree to compare the scanned "
                           "directory against, or a file of changed "
                           "paths (git diff --name-only output) to "
                           "restrict the scan to; emits verdict "
                           "deltas (added/changed/cleared) and "
                           "re-extracts only invalidated functions")
    scan.add_argument("--watch", action="store_true",
                      help="watch the scanned directory: poll mtimes, "
                           "rescan changed files incrementally, and "
                           "stream verdict-delta JSONL to stdout")
    scan.add_argument("--interval", type=float, default=0.5,
                      help="watch-mode poll interval in seconds "
                           "(default 0.5)")
    scan.add_argument("--max-polls", type=int, default=None,
                      help="watch-mode poll budget (default: poll "
                           "until interrupted)")
    scan.add_argument("--cache-dir", type=Path, default=None,
                      help="content-addressed extraction cache "
                           "directory shared with train/extract")
    scan.add_argument("--fn-cache-dir", type=Path, default=None,
                      help="function-level incremental gadget cache "
                           "directory; --diff/--watch default to a "
                           "per-run temporary one")
    scan.add_argument("--case-timeout", type=float, default=None,
                      help="per-case extraction wall-clock budget in "
                           "seconds; hanging cases are skipped and "
                           "quarantined instead of wedging the scan")
    scan.add_argument("--quarantine", type=Path, default=None,
                      help="poison-case quarantine list (.jsonl)")
    scan.add_argument("--quarantine-retry-after", type=int,
                      default=None, metavar="N",
                      help="retry a quarantined case after it has "
                           "been pre-skipped N times (clean retries "
                           "discharge the entry; default: skip "
                           "forever)")
    scan.add_argument("--requarantine", action="store_true",
                      help="drop every quarantine entry before "
                           "scanning so all cases are retried; "
                           "still-failing ones re-enter the list")
    scan.add_argument("--stats", action="store_true",
                      help="print scan telemetry (queue depth, batch "
                           "fill, latency percentiles, cache hits)")

    serve = commands.add_parser(
        "serve",
        help="run the always-on scan server (shared model, "
             "process-backed scoring, verdict cache)")
    serve.add_argument("--model", type=Path, required=True)
    serve.add_argument("--socket", type=Path, default=None,
                       help="listen on this unix socket path "
                            "(default: TCP on --host/--port)")
    serve.add_argument("--host", default=None,
                       help="TCP bind host (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=0,
                       help="TCP bind port (0 picks a free one, "
                            "printed on startup)")
    serve.add_argument("--workers", type=int, default=2,
                       help="scorer workers (processes for the "
                            "default backend)")
    serve.add_argument("--batch-size", type=int, default=64,
                       help="micro-batch size for gadget scoring")
    serve.add_argument("--scorer",
                       choices=("process", "thread"),
                       default="process",
                       help="scoring backend (default: worker "
                            "processes over shared-memory "
                            "weights)")
    serve.add_argument("--max-pending", type=int, default=64,
                       help="per-client in-flight budget; scans "
                            "over it are shed immediately")
    serve.add_argument("--max-restarts", type=int, default=3,
                       help="dead scorer workers respawned per "
                            "--restart-window before the service "
                            "falls back to degraded in-process "
                            "scoring (0 disables self-healing)")
    serve.add_argument("--restart-window", type=float, default=30.0,
                       help="sliding window (seconds) for the "
                            "--max-restarts budget")
    serve.add_argument("--dispatchers", type=int, default=2,
                       help="dispatcher threads batching admitted "
                            "requests into scan_cases calls")
    serve.add_argument("--threshold", type=float, default=None,
                       help="override the decision threshold")
    serve.add_argument("--cache-capacity", type=int,
                       default=4096,
                       help="verdict cache capacity (survives hot "
                            "reloads; token-keyed)")

    fuzz = commands.add_parser(
        "fuzz", help="run a coverage-guided fuzzing campaign")
    fuzz.add_argument("file", type=Path)
    fuzz.add_argument("--execs", type=int, default=800)
    fuzz.add_argument("--max-steps", type=int, default=20_000)
    fuzz.add_argument("--seed", type=int, default=0)

    gadgets = commands.add_parser(
        "gadgets", help="print a file's code gadgets")
    gadgets.add_argument("file", type=Path)
    gadgets.add_argument("--kind",
                         choices=("path-sensitive", "classic"),
                         default="path-sensitive")

    extract = commands.add_parser(
        "extract",
        help="extract labeled gadgets from a generated corpus "
             "(parallel + cached) and write them to .jsonl")
    extract.add_argument("--cases", type=int, default=150,
                         help="number of SARD-style programs")
    extract.add_argument("--nvd-cases", type=int, default=0,
                         help="number of NVD-style programs")
    extract.add_argument("--seed", type=int, default=7)
    extract.add_argument("--kind",
                         choices=("path-sensitive", "classic"),
                         default="path-sensitive")
    extract.add_argument("--workers", type=int, default=0,
                         help="extraction worker processes "
                              "(0 = serial, default)")
    extract.add_argument("--cache-dir", type=Path, default=None,
                         help="content-addressed extraction cache "
                              "directory")
    extract.add_argument("--case-timeout", type=float, default=None,
                         help="per-case extraction wall-clock budget "
                              "in seconds")
    extract.add_argument("--quarantine", type=Path, default=None,
                         help="poison-case quarantine list (.jsonl)")
    extract.add_argument("--quarantine-retry-after", type=int,
                         default=None, metavar="N",
                         help="retry a quarantined case after N "
                              "pre-skips (default: skip forever)")
    extract.add_argument("--requarantine", action="store_true",
                         help="drop every quarantine entry before "
                              "extracting so all cases are retried")
    extract.add_argument("--out", type=Path, required=True,
                         help="output gadget dataset (.jsonl)")
    extract.add_argument("--stats", action="store_true",
                         help="print extraction telemetry")

    matrix = commands.add_parser(
        "matrix",
        help="run the detectors x datasets benchmark matrix "
             "(leaderboard + per-cell JSON artifacts)")
    matrix.add_argument("--detectors", nargs="+", default=None,
                        metavar="NAME",
                        help="detector registry names (frameworks "
                             "like SEVulDet/SySeVR, static tools "
                             "flawfinder/rats/checkmarx/vuddy, "
                             "fuzzer 'afl'); default: the standard "
                             "lineup")
    matrix.add_argument("--datasets", nargs="+", default=None,
                        metavar="NAME",
                        choices=None,
                        help="dataset adapter names (sard, nvd, xen, "
                             "juliet, cvefixes); default: all")
    matrix.add_argument("--out", type=Path, required=True,
                        help="artifact directory (leaderboard.txt/.md, "
                             "matrix.json, cells/*.json)")
    matrix.add_argument("--baseline", default="flawfinder",
                        help="detector the per-dataset bootstrap "
                             "significance compares against "
                             "(default: flawfinder)")
    matrix.add_argument("--seed", type=int, default=7,
                        help="grid seed (dataset splits and per-cell "
                             "detector seeds derive from it)")
    matrix.add_argument("--train-cases", type=int, default=None,
                        help="training programs per dataset "
                             "(default: the scale preset)")
    matrix.add_argument("--test-cases", type=int, default=None,
                        help="test programs per dataset "
                             "(default: half the scale preset)")
    matrix.add_argument("--resamples", type=int, default=500,
                        help="bootstrap resamples for significance "
                             "(0 = point estimates only)")
    matrix.add_argument("--fuzz-execs", type=int, default=150,
                        help="fuzzing executions per case for the "
                             "'afl' detector")
    matrix.add_argument("--no-resume", action="store_true",
                        help="recompute every cell even when a "
                             "finished cell artifact exists in --out")
    matrix.add_argument("--cache-dir", type=Path, default=None,
                        help="content-addressed extraction cache "
                             "shared by every cell")
    matrix.add_argument("--quarantine", type=Path, default=None,
                        help="poison-case quarantine list (.jsonl)")
    matrix.add_argument("--case-timeout", type=float, default=None,
                        help="per-case extraction wall-clock budget")
    matrix.add_argument("--stats", action="store_true",
                        help="print shared-context telemetry (per-tool "
                             "wall time, cases/sec, cache hits)")

    export = commands.add_parser(
        "export-corpus",
        help="generate a corpus and write it to disk "
             "(.c files + SARD-style manifest.xml)")
    export.add_argument("--cases", type=int, default=100)
    export.add_argument("--kind", choices=("sard", "nvd", "xen"),
                        default="sard")
    export.add_argument("--seed", type=int, default=0)
    export.add_argument("--dir", type=Path, required=True)
    return parser


def _resolve_scale(args: argparse.Namespace):
    if args.scale is not None:
        return SCALE_PRESETS[args.scale]
    return current_scale()


def _cmd_train(args: argparse.Namespace) -> int:
    if args.resume and args.checkpoint_dir is None:
        print("error: --resume requires --checkpoint-dir",
              file=sys.stderr)
        return 2
    scale = _resolve_scale(args)
    corpus = generate_sard_corpus(args.cases, seed=args.seed)
    if args.nvd_cases > 0:
        corpus += generate_nvd_corpus(args.nvd_cases,
                                      seed=args.seed + 1)
    vulnerable = sum(case.vulnerable for case in corpus)
    print(f"training on {len(corpus)} programs "
          f"({vulnerable} vulnerable) at scale {scale.name!r} ...")
    ctx = _run_context(args, workers=args.workers)
    detector = SEVulDet(scale=scale, seed=args.seed,
                        workers=ctx.workers, cache=ctx.cache,
                        case_timeout=ctx.case_timeout,
                        quarantine=ctx.quarantine,
                        telemetry=ctx.telemetry)
    report = detector.fit(corpus, ctx=ctx)
    detector.save(args.out)
    if detector.extraction_failures:
        print(f"skipped {len(detector.extraction_failures)} case(s): "
              + ", ".join(f"{f.case_name} ({f.reason})"
                          for f in detector.extraction_failures[:5]))
    print(f"final loss {report.final_loss:.4f}; model saved to "
          f"{args.out}")
    if args.stats:
        print(detector.telemetry.summary())
    return 0


def _cmd_extract(args: argparse.Namespace) -> int:
    from .core.store import save_gadgets

    corpus = generate_sard_corpus(args.cases, seed=args.seed)
    if args.nvd_cases > 0:
        corpus += generate_nvd_corpus(args.nvd_cases,
                                      seed=args.seed + 1)
    ctx = _run_context(args, workers=args.workers)
    engine = Engine(ExtractStage(args.kind), ctx=ctx)
    gadgets = [gadget for chunk in engine.run(corpus)
               for gadget in chunk]
    count = save_gadgets(gadgets, args.out)
    vulnerable = sum(g.label for g in gadgets)
    print(f"extracted {count} gadgets ({vulnerable} vulnerable) from "
          f"{len(corpus)} programs -> {args.out}")
    if ctx.failures:
        print(f"skipped {len(ctx.failures)} case(s): "
              + ", ".join(f"{f.case_name} ({f.reason})"
                          for f in ctx.failures[:5]))
    if args.stats:
        print(ctx.telemetry.summary())
    return 0


def _cmd_scan(args: argparse.Namespace) -> int:
    import json
    import tempfile

    from .core.serve import ScanService, case_for_file, \
        expand_scan_paths

    if (args.model is None) == (args.connect is None):
        print("error: scan needs exactly one of --model (in-process) "
              "or --connect (remote daemon)", file=sys.stderr)
        return 2
    if args.diff is not None and args.watch:
        print("error: --diff and --watch are mutually exclusive",
              file=sys.stderr)
        return 2
    if (args.diff is not None or args.watch) and args.model is None:
        print("error: --diff/--watch scan in-process and need "
              "--model", file=sys.stderr)
        return 2
    if args.connect is not None:
        return _cmd_scan_connect(args)

    ctx = _run_context(args)  # scan --workers = scorer threads
    detector = SEVulDet(scale=_resolve_scale(args),
                        cache=ctx.cache,
                        case_timeout=ctx.case_timeout,
                        quarantine=ctx.quarantine)
    detector.load(args.model)
    if args.threshold is not None:
        detector.threshold = args.threshold
    calibration = None
    if args.dtype != "float32" \
            and args.dtype != detector.inference_dtype:
        # a held-out corpus (seed disjoint from train defaults) so the
        # printed guardband is measured, not assumed
        calibration = generate_sard_corpus(
            max(args.calibration_cases, 1), seed=9091)
    fn_cache_dir = args.fn_cache_dir
    temp_fn_cache = None
    if fn_cache_dir is None and (args.diff is not None or args.watch):
        # incremental modes always get function-level reuse; without
        # a persistent directory it lives for just this invocation
        temp_fn_cache = tempfile.TemporaryDirectory(
            prefix="repro-fncache-")
        fn_cache_dir = Path(temp_fn_cache.name)
    try:
        with ScanService(detector, workers=args.workers,
                         batch_size=args.batch_size, dtype=args.dtype,
                         calibration=calibration,
                         fn_cache=fn_cache_dir) as service:
            if args.diff is not None:
                return _cmd_scan_diff(args, service)
            if args.watch:
                return _cmd_scan_watch(args, service)
            files = expand_scan_paths(args.files)
            cases = [case_for_file(path) for path in files]
            exit_code = 0
            verdicts = []
            handle = (args.jsonl.open("w", encoding="utf-8")
                      if args.jsonl is not None else None)
            try:
                # verdicts stream back in input order (the service
                # buffers-and-releases by case index), so the JSONL
                # byte stream is identical run to run at any worker
                # count
                for verdict in service.scan_stream(cases):
                    verdicts.append(verdict)
                    if verdict.status == "skipped":
                        print(f"{verdict.name}: skipped "
                              f"({verdict.reason})")
                    elif not verdict.findings:
                        print(f"{verdict.name}: clean")
                    else:
                        exit_code = 1
                        for finding in verdict.findings:
                            print(f"{finding.path}:{finding.line}: "
                                  f"[{finding.category}] suspicious "
                                  f"{finding.function}() "
                                  f"score={finding.score:.2f}")
                    if handle is not None:
                        handle.write(
                            json.dumps(verdict.as_record(),
                                       sort_keys=True) + "\n")
            finally:
                if handle is not None:
                    handle.close()
            stats = service.stats()
    finally:
        if temp_fn_cache is not None:
            temp_fn_cache.cleanup()
    flagged = sum(v.flagged for v in verdicts)
    skipped = sum(v.status == "skipped" for v in verdicts)
    clean = len(verdicts) - flagged - skipped
    print(f"scanned {len(verdicts)} case(s): {flagged} flagged, "
          f"{clean} clean, {skipped} skipped "
          f"({stats['cases_per_sec']:.1f} cases/s)")
    report = detector.quantization_report
    if report is not None:
        print(f"  dtype={report.dtype}: weights "
              f"{report.weights_nbytes_before} -> "
              f"{report.payload_nbytes} bytes; guardband max "
              f"|dprob|={report.max_abs_delta:.2e} "
              f"verdict flips={report.flips}/"
              f"{report.calibration_samples}")
    if args.stats:
        latency = stats["latency_seconds"]
        fill = stats["batch_fill"]
        depth = stats["queue_depth"]
        cache = stats["result_cache"]
        print(f"  scored {stats['scored_gadgets']} gadget(s) in "
              f"{stats['batches']} batch(es)")
        if latency.get("count"):
            print(f"  case latency p50={latency['p50'] * 1e3:.1f}ms "
                  f"p95={latency['p95'] * 1e3:.1f}ms")
        if fill.get("count"):
            print(f"  batch fill mean={fill['mean']:.2f} "
                  f"p95={fill['p95']:.2f}")
        if depth.get("count"):
            print(f"  queue depth p50={depth['p50']:.0f} "
                  f"max={depth['max']:.0f}")
        print(f"  result cache: {cache['hits']} hit(s), "
              f"{cache['misses']} miss(es) "
              f"(rate {cache['hit_rate']:.2f})")
        resilience = stats["resilience"]
        print(f"  resilience: health={resilience['health']} "
              f"scorer={resilience['scorer']}, "
              f"{resilience['respawns']} respawn(s), "
              f"{resilience['fallbacks']} fallback(s), "
              f"{resilience['retries']} rescored submit(s)")
        print(service.telemetry.summary())
    return exit_code


def _cmd_scan_diff(args: argparse.Namespace, service) -> int:
    """``scan --diff BASE TARGET``: scan two trees, emit deltas.

    BASE is either a tree (full two-tree diff) or a names file
    (``git diff --name-only`` output; scans only the listed paths
    under TARGET).  Exit 1 when the diff added or changed a flagged
    file, 0 when every delta cleared or nothing changed.
    """
    from .core.diffscan import DiffScanner, deltas_as_jsonl

    if len(args.files) != 1:
        print("error: scan --diff takes exactly one target tree",
              file=sys.stderr)
        return 2
    target = Path(args.files[0])
    if not target.is_dir():
        print(f"error: scan --diff target {target} is not a "
              f"directory", file=sys.stderr)
        return 2
    scanner = DiffScanner(service)
    base = args.diff
    if base.is_dir():
        report = scanner.diff(base, target)
    elif base.is_file():
        names = base.read_text(encoding="utf-8").splitlines()
        report = scanner.scan_names(target, names)
    else:
        print(f"error: --diff base {base} is neither a tree nor a "
              f"names file", file=sys.stderr)
        return 2
    for rel in report.changed_files:
        frontier = report.frontier.get(rel)
        if frontier:
            print(f"{rel}: re-slicing {', '.join(frontier)}")
        else:
            print(f"{rel}: changed")
    for delta in report.deltas:
        print(f"{delta.event}: {delta.name}")
    print(f"diff: {len(report.changed_files)} changed file(s), "
          f"{len(report.deltas)} verdict delta(s)")
    if args.jsonl is not None:
        with args.jsonl.open("w", encoding="utf-8") as handle:
            for line in deltas_as_jsonl(report.deltas):
                handle.write(line + "\n")
    return 1 if report.dirty else 0


def _cmd_scan_watch(args: argparse.Namespace, service) -> int:
    """``scan --watch DIR``: poll mtimes, stream verdict deltas as
    JSONL on stdout (and to ``--jsonl`` when given)."""
    import json

    from .core.diffscan import WatchLoop

    if len(args.files) != 1:
        print("error: scan --watch takes exactly one directory",
              file=sys.stderr)
        return 2
    root = Path(args.files[0])
    if not root.is_dir():
        print(f"error: scan --watch root {root} is not a directory",
              file=sys.stderr)
        return 2
    handle = (args.jsonl.open("w", encoding="utf-8")
              if args.jsonl is not None else None)

    def emit(delta) -> None:
        line = json.dumps(delta.as_record(), sort_keys=True)
        print(line, flush=True)
        if handle is not None:
            handle.write(line + "\n")
            handle.flush()

    loop = WatchLoop(service, root, interval=args.interval,
                     max_polls=args.max_polls, emit=emit)
    try:
        loop.run()
    except KeyboardInterrupt:
        pass
    finally:
        if handle is not None:
            handle.close()
    return 0


def _cmd_scan_connect(args: argparse.Namespace) -> int:
    """``scan --connect``: same files, same output, remote scoring."""
    import json

    from .core.ipc import ProtocolError, ScanClient
    from .core.serve import expand_scan_paths

    files = expand_scan_paths(args.files)
    try:
        with ScanClient(args.connect) as client:
            responses = client.scan_paths(files)
            stats = client.stats() if args.stats else None
    except (OSError, ProtocolError) as error:
        print(f"error: scan server at {args.connect}: {error}",
              file=sys.stderr)
        return 2
    exit_code = 0
    records = []
    for response in responses:
        if response["status"] != "ok":
            exit_code = 2
            print(f"{response.get('name', '?')}: "
                  f"{response['status']} "
                  f"({response.get('error', '')})")
            continue
        record = response["verdict"]
        records.append(record)
        if record["status"] == "skipped":
            print(f"{record['name']}: skipped ({record['reason']})")
        elif not record["findings"]:
            print(f"{record['name']}: clean")
        else:
            exit_code = max(exit_code, 1)
            for finding in record["findings"]:
                print(f"{record['name']}:{finding['line']}: "
                      f"[{finding['category']}] suspicious "
                      f"{finding['function']}() "
                      f"score={finding['score']:.2f}")
    if args.jsonl is not None:
        with args.jsonl.open("w", encoding="utf-8") as handle:
            for record in records:
                handle.write(json.dumps(record, sort_keys=True)
                             + "\n")
    flagged = sum(r["status"] == "flagged" for r in records)
    skipped = sum(r["status"] == "skipped" for r in records)
    shed = len(responses) - len(records)
    clean = len(records) - flagged - skipped
    print(f"scanned {len(responses)} case(s) via {args.connect}: "
          f"{flagged} flagged, {clean} clean, {skipped} skipped, "
          f"{shed} shed/error")
    if stats is not None:
        server = stats["server"]
        service = stats["service"] or {}
        cache = service.get("result_cache", {})
        fill = service.get("batch_fill", {})
        print(f"  server: {server['scans']} scan(s), "
              f"{server['shed']} shed, {server['reloads']} "
              f"reload(s), {server['clients']} client(s), "
              f"scorer={server['scorer']}, "
              f"health={server['health']}")
        resilience = service.get("resilience")
        if resilience:
            print(f"  resilience: {resilience['respawns']} "
                  f"respawn(s), {resilience['fallbacks']} "
                  f"fallback(s), {server['deadline_expired']} "
                  f"deadline-expired, {server['conn_drops']} "
                  f"conn drop(s)")
        if fill.get("count"):
            print(f"  batch fill mean={fill['mean']:.2f} "
                  f"p95={fill['p95']:.2f}")
        if cache:
            print(f"  result cache: {cache['hits']} hit(s), "
                  f"{cache['misses']} miss(es) "
                  f"(rate {cache['hit_rate']:.2f})")
    return exit_code


def _cmd_serve(args: argparse.Namespace) -> int:
    from .core.scorer_pool import RestartPolicy
    from .core.server import ScanServer

    server = ScanServer(
        model=args.model, scale=_resolve_scale(args),
        threshold=args.threshold,
        socket_path=args.socket,
        host=(None if args.socket is not None
              else (args.host or "127.0.0.1")),
        port=args.port, workers=args.workers,
        batch_size=args.batch_size, scorer=args.scorer,
        max_pending=args.max_pending, dispatchers=args.dispatchers,
        cache_capacity=args.cache_capacity,
        restart_policy=RestartPolicy(
            max_restarts=args.max_restarts,
            window_s=args.restart_window))
    server.start()
    # announced on stdout so wrappers (and the benchmark harness) can
    # learn the picked TCP port; flush before blocking forever
    print(f"serving on {server.address} "
          f"(scorer={args.scorer}, workers={args.workers})",
          flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.stop()
    return 0


def _cmd_fuzz(args: argparse.Namespace) -> int:
    source = args.file.read_text()
    fuzzer = AFLFuzzer(source, max_execs=args.execs,
                       max_steps=args.max_steps, seed=args.seed)
    report = fuzzer.run()
    print(f"executions: {report.executions}  "
          f"coverage edges: {len(report.coverage)}  "
          f"queue: {report.queue_size}")
    for crash in report.crashes:
        print(f"CRASH {crash.kind} at line {crash.line} "
              f"input={crash.example!r}")
    for hang in report.hangs:
        print(f"HANG input={hang.example!r}")
    if not report.found_anything:
        print("no crashes or hangs found")
        return 0
    return 1


def _cmd_gadgets(args: argparse.Namespace) -> int:
    source = args.file.read_text()
    case = TestCase(name=str(args.file), source=source,
                    vulnerable=False, vulnerable_lines=frozenset(),
                    cwe="", category="", origin="cli")
    gadgets = extract_gadgets([case], kind=args.kind,
                              deduplicate=False, keep_gadget=True)
    if not gadgets:
        print("no gadgets (unparseable input or no special tokens)")
        return 1
    for gadget in gadgets:
        print(f"=== {gadget.criterion} [{gadget.kind}] "
              f"label-tokens={len(gadget.tokens)} ===")
        assert gadget.gadget is not None
        for line in gadget.gadget.lines:
            print(f"  [{line.role:15s}] {line.line:4d} {line.text}")
        print()
    return 0


def _cmd_matrix(args: argparse.Namespace) -> int:
    from .datasets.adapters import default_adapters
    from .eval.detector import DEFAULT_DETECTOR_NAMES, build_detector
    from .eval.matrix import MatrixRunner

    def split_names(values, defaults):
        # accept both `--datasets sard juliet` and
        # `--datasets sard,juliet`
        if not values:
            return list(defaults)
        return [name for token in values
                for name in token.split(",") if name]

    scale = _resolve_scale(args)
    adapters = default_adapters(args.train_cases, args.test_cases)
    dataset_names = split_names(args.datasets, sorted(adapters))
    unknown = [name for name in dataset_names if name not in adapters]
    if unknown:
        print(f"error: unknown dataset(s) {unknown}; choose from "
              f"{sorted(adapters)}", file=sys.stderr)
        return 2
    detector_names = split_names(args.detectors,
                                 DEFAULT_DETECTOR_NAMES)
    try:
        for name in detector_names:  # fail fast on typos
            build_detector(name, scale=scale,
                           fuzz_execs=args.fuzz_execs)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    def make(name: str):
        # per-cell construction happens inside the runner via the
        # string path; frameworks need the resolved scale and the
        # fuzzer its execution budget, so wrap them here
        from .datasets.adapters import derive_seed

        class _Factory:
            def __init__(self, detector_name: str):
                self.name = detector_name

            def __call__(self):
                return build_detector(
                    self.name, scale=scale,
                    seed=derive_seed(args.seed, "cell", self.name),
                    fuzz_execs=args.fuzz_execs)

        return _Factory(name)

    ctx = _run_context(args)
    runner = MatrixRunner(
        [make(name) for name in detector_names],
        [adapters[name] for name in dataset_names],
        baseline=args.baseline, seed=args.seed, ctx=ctx,
        out_dir=args.out, resume=not args.no_resume,
        resamples=args.resamples,
        progress=lambda message: print(message, flush=True))
    result = runner.run()
    print()
    print(result.leaderboard().render())
    errors = [cell for cell in result.cells if not cell.ok]
    print(f"{len(result.cells)} cell(s), {len(errors)} error(s); "
          f"artifacts under {args.out}")
    for cell in errors:
        print(f"  error {cell.detector} x {cell.dataset}: "
              f"{cell.error}")
    if args.stats:
        print(ctx.telemetry.summary())
    return 1 if errors else 0


def _cmd_export_corpus(args: argparse.Namespace) -> int:
    from .datasets.manifest_xml import export_corpus
    from .datasets.xen import generate_xen_corpus

    generators = {
        "sard": generate_sard_corpus,
        "nvd": generate_nvd_corpus,
        "xen": generate_xen_corpus,
    }
    cases = generators[args.kind](args.cases, seed=args.seed)
    manifest = export_corpus(cases, args.dir)
    vulnerable = sum(case.vulnerable for case in cases)
    print(f"wrote {len(cases)} programs ({vulnerable} vulnerable) "
          f"under {args.dir}")
    print(f"manifest: {manifest}")
    return 0


_COMMANDS = {
    "train": _cmd_train,
    "scan": _cmd_scan,
    "serve": _cmd_serve,
    "fuzz": _cmd_fuzz,
    "gadgets": _cmd_gadgets,
    "extract": _cmd_extract,
    "matrix": _cmd_matrix,
    "export-corpus": _cmd_export_corpus,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
