"""Diff-aware and watch-mode scanning front ends.

The one-shot ``scan`` treats every invocation as a cold universe; the
workload the ROADMAP targets is a *commit*: two nearly-identical trees
where a handful of functions changed.  :class:`DiffScanner` scans the
base tree and then the target tree through one
:class:`~repro.core.serve.ScanService`, so

* unchanged files resolve from the service's in-memory
  :class:`~repro.core.serve.ResultCache` (cases are named by
  tree-relative path, making base and target keys collide exactly when
  content matches),
* changed files re-slice only the call components their edits touched,
  via the service's :class:`~repro.core.cache.FunctionGadgetCache`,
* and the two verdict maps reduce to a stream of *deltas* —
  ``added`` (newly flagged), ``changed`` (still flagged, different
  record), ``cleared`` (no longer flagged, or file removed) — the
  record shape CI gates and review bots consume.

:class:`WatchLoop` runs the same reduction continuously: poll mtimes,
rescan only the files whose stat signature moved, emit the deltas as
JSONL.  Verdicts are byte-identical to a cold scan of the same tree —
the caches only ever skip work, never change results (pinned by
``tests/core/test_diffscan.py`` and gated in ``scripts/bench_diff.py``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Iterator

from ..lang.callgraph import ast_call_edges
from ..lang.parser import ParseError, parse
from .fingerprint import (DEFAULT_FRONTIER_DEPTH, changed_functions,
                          invalidation_frontier)
from .serve import ScanService, case_for_file

__all__ = ["VerdictDelta", "DiffReport", "DiffScanner", "WatchLoop",
           "compute_deltas"]


@dataclass(frozen=True)
class VerdictDelta:
    """One verdict transition between two scans of a tree.

    ``event`` is ``added`` (not flagged -> flagged), ``changed``
    (flagged -> flagged with a different record), or ``cleared``
    (flagged -> clean/skipped/removed).  ``verdict`` is the new record
    (None when the file was removed), ``before`` the old one (None
    when the file is new).
    """

    event: str
    name: str
    verdict: dict | None
    before: dict | None

    def as_record(self) -> dict:
        return {"event": self.event, "name": self.name,
                "verdict": self.verdict, "before": self.before}


def _flagged(record: dict | None) -> bool:
    return record is not None and record.get("status") == "flagged"


def compute_deltas(before: dict[str, dict],
                   after: dict[str, dict]) -> list[VerdictDelta]:
    """Reduce two name->verdict-record maps to sorted deltas.

    Files absent from ``after`` were removed (``cleared`` if they were
    flagged); files absent from ``before`` are new.  Quiet transitions
    (clean -> clean, clean -> skipped, ...) emit nothing — the stream
    carries only what a gate must act on.
    """
    deltas: list[VerdictDelta] = []
    for name in sorted(before.keys() | after.keys()):
        old, new = before.get(name), after.get(name)
        if _flagged(new) and not _flagged(old):
            deltas.append(VerdictDelta("added", name, new, old))
        elif _flagged(new) and _flagged(old) and new != old:
            deltas.append(VerdictDelta("changed", name, new, old))
        elif _flagged(old) and not _flagged(new):
            deltas.append(VerdictDelta("cleared", name, new, old))
    return deltas


def _relative_files(root: Path, pattern: str) -> dict[str, Path]:
    """relpath -> absolute path for every ``pattern`` file under
    ``root``, sorted (the expand_scan_paths walk, rooted)."""
    return {path.relative_to(root).as_posix(): path
            for path in sorted(root.rglob(pattern))}


def _file_frontier(base_source: str, target_source: str,
                   depth: int) -> list[str]:
    """Reported re-slice plan for one changed file: edited functions
    plus callers within ``depth`` hops (in the *target* call graph;
    when the target does not parse, the fingerprint diff alone)."""
    changed = changed_functions(base_source, target_source)
    if not changed:
        return []
    try:
        edges = ast_call_edges(parse(target_source))
    except (ParseError, RecursionError):
        return sorted(changed)
    return sorted(invalidation_frontier(edges, changed, depth))


@dataclass
class DiffReport:
    """Everything one :meth:`DiffScanner.diff` run learned.

    ``verdicts`` maps every target relpath to its verdict record;
    ``frontier`` maps each changed file to the functions planned for
    re-slicing (reporting — cache keys decide actual reuse, and only
    ever over-invalidate); ``deltas`` is the gate-facing stream.
    """

    base_root: str
    target_root: str
    changed_files: list[str] = field(default_factory=list)
    frontier: dict[str, list[str]] = field(default_factory=dict)
    deltas: list[VerdictDelta] = field(default_factory=list)
    verdicts: dict[str, dict] = field(default_factory=dict)
    base_verdicts: dict[str, dict] = field(default_factory=dict)

    @property
    def dirty(self) -> bool:
        """True when the diff introduced or changed a flagged file."""
        return any(d.event in ("added", "changed") for d in self.deltas)


class DiffScanner:
    """Two-tree (or names-file) incremental scanning front end."""

    def __init__(self, service: ScanService, *, pattern: str = "*.c",
                 frontier_depth: int = DEFAULT_FRONTIER_DEPTH):
        self.service = service
        self.pattern = pattern
        self.frontier_depth = frontier_depth

    def scan_tree(self, root: str | Path) -> dict[str, dict]:
        """Scan every matching file under ``root``; relpath-keyed
        verdict records."""
        root = Path(root)
        files = _relative_files(root, self.pattern)
        cases = [case_for_file(path, name=rel)
                 for rel, path in files.items()]
        return {verdict.name: verdict.as_record()
                for verdict in self.service.scan_stream(cases)}

    def diff(self, base: str | Path,
             target: str | Path) -> DiffReport:
        """Scan ``base`` then ``target``; report deltas + frontier.

        The base scan warms every cache layer (in-memory verdicts,
        per-case gadgets, per-function components), so the target scan
        pays only for the edit: unchanged files are verdict-cache
        hits, changed files re-slice their invalidated components.
        Target verdicts are byte-identical to a cold scan of the
        target tree alone.
        """
        base, target = Path(base), Path(target)
        report = DiffReport(base_root=str(base),
                            target_root=str(target))
        base_files = _relative_files(base, self.pattern)
        target_files = _relative_files(target, self.pattern)
        for rel in sorted(base_files.keys() | target_files.keys()):
            base_path = base_files.get(rel)
            target_path = target_files.get(rel)
            base_text = (base_path.read_text(encoding="utf-8",
                                             errors="replace")
                         if base_path else None)
            target_text = (target_path.read_text(encoding="utf-8",
                                                 errors="replace")
                           if target_path else None)
            if base_text == target_text:
                continue
            report.changed_files.append(rel)
            report.frontier[rel] = _file_frontier(
                base_text or "", target_text or "",
                self.frontier_depth)
        report.base_verdicts = self.scan_tree(base)
        report.verdicts = self.scan_tree(target)
        report.deltas = compute_deltas(report.base_verdicts,
                                       report.verdicts)
        return report

    def scan_names(self, target: str | Path,
                   names: Iterable[str]) -> DiffReport:
        """CI-gate mode: scan only the listed relpaths under
        ``target`` (``git diff --name-only`` output).

        There is no base tree to compare against, so ``deltas``
        reduces against an empty baseline: every flagged listed file
        surfaces as ``added``.  Names outside ``pattern`` or missing
        from the tree are skipped silently (deleted files show up in
        name-only diffs too).
        """
        target = Path(target)
        report = DiffReport(base_root="", target_root=str(target))
        cases = []
        for raw in names:
            rel = raw.strip()
            if not rel:
                continue
            path = target / rel
            if not path.is_file() or not path.match(self.pattern):
                continue
            report.changed_files.append(rel)
            cases.append(case_for_file(path, name=rel))
        report.verdicts = {
            verdict.name: verdict.as_record()
            for verdict in self.service.scan_stream(cases)}
        report.deltas = compute_deltas({}, report.verdicts)
        return report


class WatchLoop:
    """Poll a tree's mtimes and stream verdict deltas as they happen.

    The first poll scans the whole tree and emits its flagged files as
    ``added`` (the delta from an empty baseline); every later poll
    stats the tree, rescans only files whose ``(mtime_ns, size)``
    signature moved or that appeared, and emits the deltas.  Removed
    files emit ``cleared`` when they were flagged.  Rescans go through
    the same service caches as diff mode, so a watch iteration costs
    what the edit touched, not the tree.
    """

    def __init__(self, service: ScanService, root: str | Path, *,
                 pattern: str = "*.c", interval: float = 0.5,
                 max_polls: int | None = None,
                 emit: Callable[[VerdictDelta], None] | None = None,
                 clock: Callable[[], float] = time.monotonic,
                 sleep: Callable[[float], None] = time.sleep):
        self.service = service
        self.root = Path(root)
        self.pattern = pattern
        self.interval = interval
        self.max_polls = max_polls
        self.emit = emit
        self._clock = clock
        self._sleep = sleep
        self.verdicts: dict[str, dict] = {}
        self._signatures: dict[str, tuple[int, int]] = {}
        self.polls = 0

    def _stat_tree(self) -> dict[str, tuple[Path, tuple[int, int]]]:
        out: dict[str, tuple[Path, tuple[int, int]]] = {}
        for rel, path in _relative_files(self.root,
                                         self.pattern).items():
            try:
                stat = path.stat()
            except OSError:
                continue  # deleted between glob and stat
            out[rel] = (path, (stat.st_mtime_ns, stat.st_size))
        return out

    def poll(self) -> list[VerdictDelta]:
        """One poll: rescan what moved, return (and emit) the deltas."""
        self.polls += 1
        snapshot = self._stat_tree()
        stale = [rel for rel, (_, sig) in snapshot.items()
                 if self._signatures.get(rel) != sig]
        removed = [rel for rel in self._signatures
                   if rel not in snapshot]
        deltas: list[VerdictDelta] = []
        if stale or removed:
            cases = [case_for_file(snapshot[rel][0], name=rel)
                     for rel in stale]
            before = dict(self.verdicts)
            for verdict in self.service.scan_stream(cases):
                self.verdicts[verdict.name] = verdict.as_record()
            for rel in removed:
                self.verdicts.pop(rel, None)
                del self._signatures[rel]
            for rel, (_, sig) in snapshot.items():
                self._signatures[rel] = sig
            after = dict(self.verdicts)
            # reduce only over touched names so an unrelated flagged
            # file never re-emits
            touched = set(stale) | set(removed)
            deltas = [delta for delta
                      in compute_deltas(before, after)
                      if delta.name in touched]
            if self.emit is not None:
                for delta in deltas:
                    self.emit(delta)
        return deltas

    def run(self) -> int:
        """Poll until ``max_polls`` (forever when None); returns the
        number of polls executed."""
        while self.max_polls is None or self.polls < self.max_polls:
            started = self._clock()
            self.poll()
            if self.max_polls is not None \
                    and self.polls >= self.max_polls:
                break
            elapsed = self._clock() - started
            self._sleep(max(0.0, self.interval - elapsed))
        return self.polls


def deltas_as_jsonl(deltas: Iterable[VerdictDelta]) -> Iterator[str]:
    """Serialize deltas as sorted-key JSON lines (stable byte-wise)."""
    import json

    for delta in deltas:
        yield json.dumps(delta.as_record(), sort_keys=True)
