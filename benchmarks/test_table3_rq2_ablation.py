"""Table III (RQ2) — multilayer-attention ablation.

CNN (no attention) vs CNN-TokenATT (Step IV only) vs CNN-MultiATT
(Step IV + CBAM).  Paper: F1 monotone increasing 89.1 -> 91.0 -> 94.2.

Scale caveat, recorded in EXPERIMENTS.md: the paper's ablation deltas
(+1.9 and +3.2 F1 points) are measured on 150k gadgets; at the scaled
corpus these deltas are smaller than seed-to-seed noise, so the bench
reports the mean over three seeds and asserts the *robustness* shape —
every variant learns the task, and the full multilayer-attention model
is statistically indistinguishable from (or better than) the best
variant — rather than a strict monotone ordering the data cannot
resolve.
"""

import numpy as np

from repro.eval.comparison import FRAMEWORKS, train_and_evaluate

from conftest import run_once

VARIANTS = ("CNN", "CNN-TokenATT", "CNN-MultiATT")
SEEDS = (7, 23, 41)
PAPER = {"CNN": (95.4, 88.4, 89.1),
         "CNN-TokenATT": (95.5, 90.1, 91.0),
         "CNN-MultiATT": (97.3, 96.2, 94.2)}


def test_table3_attention_ablation(benchmark, reporter, scale,
                                   train_cases, test_cases):
    def experiment():
        results = {variant: [] for variant in VARIANTS}
        for variant in VARIANTS:
            for seed in SEEDS:
                metrics, _ = train_and_evaluate(
                    FRAMEWORKS[variant], train_cases, test_cases,
                    scale, seed=seed)
                results[variant].append(metrics)
        return results

    results = run_once(benchmark, experiment)

    means = {variant: {
        "A": float(np.mean([m.accuracy for m in runs])),
        "P": float(np.mean([m.precision for m in runs])),
        "F1": float(np.mean([m.f1 for m in runs])),
        "F1_std": float(np.std([m.f1 for m in runs])),
    } for variant, runs in results.items()}

    table = reporter("table3_rq2_ablation",
                     "Table III — RQ2: multilayer attention ablation "
                     f"(mean over seeds {SEEDS})")
    for variant in VARIANTS:
        stats = means[variant]
        paper_a, paper_p, paper_f1 = PAPER[variant]
        table.add(network=variant,
                  **{"A(%)": round(stats["A"] * 100, 1),
                     "P(%)": round(stats["P"] * 100, 1),
                     "F1(%)": round(stats["F1"] * 100, 1),
                     "F1 std": round(stats["F1_std"] * 100, 1)},
                  paper_A=paper_a, paper_P=paper_p, paper_F1=paper_f1)
    table.save_and_print()

    # Shape 1: every variant learns the task far beyond chance.
    for variant in VARIANTS:
        assert means[variant]["F1"] > 0.55, variant

    # Shape 2: the full multilayer-attention network is within one
    # cross-seed standard deviation of the best variant — attention
    # never catastrophically harms, matching the paper's direction
    # even where the small corpus cannot resolve the +1.9/+3.2 deltas.
    best = max(means.values(), key=lambda s: s["F1"])
    noise = max(means[v]["F1_std"] for v in VARIANTS) + 0.02
    assert means["CNN-MultiATT"]["F1"] >= best["F1"] - 2 * noise
