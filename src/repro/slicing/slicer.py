"""Forward/backward program slicing on PDGs (paper Step I.3).

Slices start at a :class:`~repro.slicing.special_tokens.SlicingCriterion`
and follow both data- and control-dependence edges — data dependence to
find attack-reachable statements, control dependence to keep the guard
semantics (paper Section III-B, Step I.3).  Interprocedural expansion
follows the call graph: backward through callers of the criterion
function, forward into callees invoked by sliced statements, exactly the
two directions VulDeePecker's formalisation composes gadgets from.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..lang.callgraph import AnalyzedProgram
from .special_tokens import SlicingCriterion

__all__ = ["Slice", "compute_slice"]


@dataclass
class Slice:
    """An interprocedural slice: per-function sets of CFG node ids."""

    criterion: SlicingCriterion
    nodes: dict[str, set[int]] = field(default_factory=dict)

    def add(self, function: str, node_id: int) -> None:
        self.nodes.setdefault(function, set()).add(node_id)

    def functions(self) -> list[str]:
        return sorted(self.nodes)

    def lines(self, program: AnalyzedProgram) -> dict[str, set[int]]:
        """Per-function source-line sets covered by the slice."""
        result: dict[str, set[int]] = {}
        for fn_name, ids in self.nodes.items():
            pdg = program.pdg(fn_name)
            lines = {
                pdg.node(node_id).line
                for node_id in ids
                if pdg.node(node_id).ast is not None
            }
            if lines:
                result[fn_name] = lines
        return result

    def total_nodes(self) -> int:
        return sum(len(ids) for ids in self.nodes.values())


def _criterion_nodes(program: AnalyzedProgram,
                     criterion: SlicingCriterion) -> set[int]:
    pdg = program.pdg(criterion.function)
    return {n.id for n in pdg.nodes_on_line(criterion.line)}


def compute_slice(
    program: AnalyzedProgram,
    criterion: SlicingCriterion,
    *,
    use_control: bool = True,
    interprocedural: bool = True,
    max_functions: int = 12,
) -> Slice:
    """Compute the combined forward+backward slice of a criterion.

    Args:
        program: analyzed program.
        criterion: the special token anchoring the slice.
        use_control: include control-dependence edges (switching this
            off reproduces VulDeePecker's data-only gadgets).
        interprocedural: expand through the call graph.
        max_functions: hard cap on visited functions (defensive bound
            for pathological call graphs).
    """
    result = Slice(criterion)
    if criterion.function not in program.pdgs:
        return result
    start = _criterion_nodes(program, criterion)
    if not start:
        return result

    _slice_within(program, criterion.function, start, result,
                  use_control=use_control)

    if not interprocedural:
        return result

    # Backward interprocedural step: the criterion's function may be
    # reached from callers; their call-site statements (and everything
    # those depend on) belong to the backward slice.
    visited = {criterion.function}
    frontier = [criterion.function]
    while frontier and len(visited) < max_functions:
        callee = frontier.pop()
        for site in program.call_graph.sites_calling(callee):
            if site.caller in visited or site.caller not in program.pdgs:
                continue
            visited.add(site.caller)
            frontier.append(site.caller)
            seed = {
                s.node_id
                for s in program.call_graph.sites_calling(callee)
                if s.caller == site.caller
            }
            caller_pdg = program.pdg(site.caller)
            backward = caller_pdg.backward_closure(
                seed, control=use_control)
            for node_id in backward:
                if caller_pdg.node(node_id).ast is not None:
                    result.add(site.caller, node_id)

    # Forward interprocedural step: calls made *by sliced statements*
    # carry data into callees; take the callee-side forward slice from
    # its entry (parameters).
    sliced_functions = list(result.nodes)
    for fn_name in sliced_functions:
        if len(visited) >= max_functions:
            break
        pdg = program.pdg(fn_name)
        sliced_ids = result.nodes[fn_name]
        for site in program.call_graph.sites_in(fn_name):
            if site.node_id not in sliced_ids:
                continue
            callee = site.callee
            if callee in visited or callee not in program.pdgs:
                continue
            visited.add(callee)
            callee_pdg = program.pdg(callee)
            forward = callee_pdg.forward_closure(
                {callee_pdg.cfg.entry.id}, control=use_control)
            for node_id in forward:
                if callee_pdg.node(node_id).ast is not None:
                    result.add(callee, node_id)
    return result


def _slice_within(program: AnalyzedProgram, function: str,
                  start: set[int], result: Slice, *,
                  use_control: bool) -> None:
    pdg = program.pdg(function)
    backward = pdg.backward_closure(start, control=use_control)
    forward = pdg.forward_closure(start, control=use_control)
    for node_id in backward | forward:
        if pdg.node(node_id).ast is not None:
            result.add(function, node_id)
