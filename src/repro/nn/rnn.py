"""Recurrent layers: LSTM, GRU, and bidirectional wrappers.

These power the baseline detectors the paper compares against —
VulDeePecker's BLSTM and SySeVR's BGRU — including their fixed-length
requirement: the models consume ``(batch, time, features)`` tensors
whose time dimension was truncated/padded upstream (paper Definition 8).
"""

from __future__ import annotations

import numpy as np

from . import init as initializers
from .layers import Module, Parameter
from .tensor import Tensor

__all__ = ["LSTMCell", "GRUCell", "RNNLayer", "Bidirectional"]


class LSTMCell(Module):
    """Standard LSTM cell (forget-gate bias initialised to 1)."""

    def __init__(self, input_size: int, hidden_size: int,
                 rng: np.random.Generator):
        super().__init__()
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.w = Parameter(initializers.xavier_uniform(
            (input_size + hidden_size, 4 * hidden_size), rng),
            name="lstm.w")
        bias = np.zeros(4 * hidden_size)
        bias[hidden_size : 2 * hidden_size] = 1.0  # forget gate
        self.b = Parameter(bias, name="lstm.b")

    def forward(self, x: Tensor, h: Tensor, c: Tensor
                ) -> tuple[Tensor, Tensor]:
        hidden = self.hidden_size
        stacked = Tensor.concat([x, h], axis=1)
        gates = stacked @ self.w + self.b
        i = gates[:, 0:hidden].sigmoid()
        f = gates[:, hidden : 2 * hidden].sigmoid()
        g = gates[:, 2 * hidden : 3 * hidden].tanh()
        o = gates[:, 3 * hidden : 4 * hidden].sigmoid()
        c_next = f * c + i * g
        h_next = o * c_next.tanh()
        return h_next, c_next

    def initial_state(self, batch: int) -> tuple[Tensor, Tensor]:
        return (Tensor(np.zeros((batch, self.hidden_size))),
                Tensor(np.zeros((batch, self.hidden_size))))


class GRUCell(Module):
    """Standard GRU cell."""

    def __init__(self, input_size: int, hidden_size: int,
                 rng: np.random.Generator):
        super().__init__()
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.w_zr = Parameter(initializers.xavier_uniform(
            (input_size + hidden_size, 2 * hidden_size), rng),
            name="gru.w_zr")
        self.b_zr = Parameter(np.zeros(2 * hidden_size), name="gru.b_zr")
        self.w_h = Parameter(initializers.xavier_uniform(
            (input_size + hidden_size, hidden_size), rng), name="gru.w_h")
        self.b_h = Parameter(np.zeros(hidden_size), name="gru.b_h")

    def forward(self, x: Tensor, h: Tensor) -> Tensor:
        hidden = self.hidden_size
        stacked = Tensor.concat([x, h], axis=1)
        zr = stacked @ self.w_zr + self.b_zr
        z = zr[:, 0:hidden].sigmoid()
        r = zr[:, hidden : 2 * hidden].sigmoid()
        candidate_in = Tensor.concat([x, r * h], axis=1)
        h_tilde = (candidate_in @ self.w_h + self.b_h).tanh()
        return (1.0 - z) * h + z * h_tilde

    def initial_state(self, batch: int) -> Tensor:
        return Tensor(np.zeros((batch, self.hidden_size)))


class RNNLayer(Module):
    """Unidirectional recurrence over (batch, time, features).

    Args:
        kind: 'lstm' or 'gru'.
        reverse: process the sequence back-to-front.
    """

    def __init__(self, input_size: int, hidden_size: int,
                 rng: np.random.Generator, kind: str = "lstm",
                 reverse: bool = False):
        super().__init__()
        if kind not in ("lstm", "gru"):
            raise ValueError(f"unknown RNN kind {kind!r}")
        self.kind = kind
        self.reverse = reverse
        self.cell: Module
        if kind == "lstm":
            self.cell = LSTMCell(input_size, hidden_size, rng)
        else:
            self.cell = GRUCell(input_size, hidden_size, rng)

    def forward(self, x: Tensor) -> tuple[Tensor, Tensor]:
        """Returns (outputs (B, T, H), final hidden (B, H))."""
        batch, time, _ = x.shape
        order = range(time - 1, -1, -1) if self.reverse else range(time)
        outputs: list[Tensor] = [Tensor(0.0)] * time
        if self.kind == "lstm":
            h, c = self.cell.initial_state(batch)
            for t in order:
                h, c = self.cell(x[:, t, :], h, c)
                outputs[t] = h
        else:
            h = self.cell.initial_state(batch)
            for t in order:
                h = self.cell(x[:, t, :], h)
                outputs[t] = h
        stacked = Tensor.stack(outputs, axis=1)
        return stacked, h


class Bidirectional(Module):
    """Concatenate forward and backward RNN outputs feature-wise."""

    def __init__(self, input_size: int, hidden_size: int,
                 rng: np.random.Generator, kind: str = "lstm"):
        super().__init__()
        self.forward_rnn = RNNLayer(input_size, hidden_size, rng, kind,
                                    reverse=False)
        self.backward_rnn = RNNLayer(input_size, hidden_size, rng, kind,
                                     reverse=True)
        self.hidden_size = hidden_size

    def forward(self, x: Tensor) -> tuple[Tensor, Tensor]:
        """Returns (outputs (B, T, 2H), final hidden (B, 2H))."""
        fwd_out, fwd_h = self.forward_rnn(x)
        bwd_out, bwd_h = self.backward_rnn(x)
        outputs = Tensor.concat([fwd_out, bwd_out], axis=2)
        final = Tensor.concat([fwd_h, bwd_h], axis=1)
        return outputs, final
