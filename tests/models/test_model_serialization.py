"""Serialization round-trips for the full model zoo."""

import numpy as np
import pytest

from repro.models.bgru import BGRUNet
from repro.models.blstm import BLSTMNet
from repro.models.multiclass import CWETypeNet
from repro.models.sevuldet import SEVulDetNet
from repro.nn import load_model, save_model


def assert_same_outputs(a, b, ids):
    a.eval(), b.eval()
    assert np.allclose(a(ids).data, b(ids).data)


class TestModelRoundTrips:
    def test_sevuldet(self, tmp_path):
        source = SEVulDetNet(vocab_size=40, dim=8, channels=8, seed=1)
        path = tmp_path / "sevuldet.npz"
        save_model(source, path)
        target = SEVulDetNet(vocab_size=40, dim=8, channels=8, seed=99)
        load_model(target, path)
        ids = np.random.default_rng(0).integers(0, 40, size=(3, 15))
        assert_same_outputs(source, target, ids)

    def test_sevuldet_without_attention(self, tmp_path):
        source = SEVulDetNet(vocab_size=40, dim=8, channels=8, seed=1,
                             use_token_attention=False, use_cbam=False)
        path = tmp_path / "cnn.npz"
        save_model(source, path)
        target = SEVulDetNet(vocab_size=40, dim=8, channels=8,
                             seed=99, use_token_attention=False,
                             use_cbam=False)
        load_model(target, path)
        ids = np.random.default_rng(0).integers(0, 40, size=(2, 9))
        assert_same_outputs(source, target, ids)

    @pytest.mark.parametrize("cls", [BLSTMNet, BGRUNet])
    def test_brnn(self, cls, tmp_path):
        source = cls(vocab_size=30, dim=6, hidden=5, time_steps=8,
                     seed=1)
        path = tmp_path / "rnn.npz"
        save_model(source, path)
        target = cls(vocab_size=30, dim=6, hidden=5, time_steps=8,
                     seed=99)
        load_model(target, path)
        ids = np.zeros((2, 8), dtype=np.int64)
        assert_same_outputs(source, target, ids)

    def test_multiclass(self, tmp_path):
        source = CWETypeNet(vocab_size=30, num_classes=4, dim=8,
                            channels=8, seed=1)
        path = tmp_path / "typer.npz"
        save_model(source, path)
        target = CWETypeNet(vocab_size=30, num_classes=4, dim=8,
                            channels=8, seed=99)
        load_model(target, path)
        ids = np.random.default_rng(0).integers(0, 30, size=(2, 7))
        assert_same_outputs(source, target, ids)

    def test_mismatched_architecture_rejected(self, tmp_path):
        source = SEVulDetNet(vocab_size=40, dim=8, channels=8)
        path = tmp_path / "m.npz"
        save_model(source, path)
        smaller = SEVulDetNet(vocab_size=40, dim=4, channels=8)
        with pytest.raises(ValueError):
            load_model(smaller, path)

    def test_ablation_variant_mismatch_rejected(self, tmp_path):
        source = SEVulDetNet(vocab_size=40, dim=8, channels=8,
                             use_cbam=False)
        path = tmp_path / "m.npz"
        save_model(source, path)
        full = SEVulDetNet(vocab_size=40, dim=8, channels=8)
        with pytest.raises(KeyError):
            load_model(full, path)


class TestLegacyArchives:
    """Archives written before parameters had names (param0..paramN)."""

    def _legacy_save(self, model, path):
        arrays = {f"param{i}": p.data
                  for i, p in enumerate(model.parameters())}
        np.savez(path, **arrays)

    def test_positional_archive_loads(self, tmp_path):
        source = SEVulDetNet(vocab_size=40, dim=8, channels=8, seed=1)
        path = tmp_path / "legacy.npz"
        self._legacy_save(source, path)
        target = SEVulDetNet(vocab_size=40, dim=8, channels=8, seed=99)
        load_model(target, path)
        ids = np.random.default_rng(0).integers(0, 40, size=(3, 15))
        assert_same_outputs(source, target, ids)

    def test_positional_count_mismatch_rejected(self, tmp_path):
        source = SEVulDetNet(vocab_size=40, dim=8, channels=8,
                             use_cbam=False)
        path = tmp_path / "legacy.npz"
        self._legacy_save(source, path)
        full = SEVulDetNet(vocab_size=40, dim=8, channels=8)
        with pytest.raises(ValueError):
            load_model(full, path)

    def test_positional_shape_mismatch_rejected(self, tmp_path):
        source = SEVulDetNet(vocab_size=40, dim=8, channels=8)
        path = tmp_path / "legacy.npz"
        self._legacy_save(source, path)
        smaller = SEVulDetNet(vocab_size=40, dim=4, channels=8)
        with pytest.raises(ValueError):
            load_model(smaller, path)

    def test_new_archives_are_name_keyed(self, tmp_path):
        model = SEVulDetNet(vocab_size=40, dim=8, channels=8, seed=1)
        path = tmp_path / "named.npz"
        save_model(model, path)
        with np.load(path) as archive:
            keys = set(archive.files)
        expected = {name for name, _ in model.named_parameters()}
        assert expected <= keys
        assert not any(k.startswith("param") and k[5:].isdigit()
                       for k in keys)
