"""Neural-network layers (Module protocol + the standard zoo).

Modules register parameters and submodules by attribute assignment,
PyTorch-style: ``self.w = Parameter(...)`` and ``self.fc = Linear(...)``
are discovered by :meth:`Module.parameters` automatically.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from . import init as initializers
from .dtype import get_default_dtype
from .ops import conv1d
from .tensor import Tensor

__all__ = ["Parameter", "Module", "Linear", "Embedding", "Dropout",
           "Conv1d", "Sequential", "ReLU", "Tanh", "Sigmoid", "Flatten"]


class Parameter(Tensor):
    """A tensor registered as trainable."""

    def __init__(self, data, name: str = ""):
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class providing parameter discovery and train/eval mode."""

    def __init__(self) -> None:
        self.training = True

    def forward(self, *args, **kwargs) -> Tensor:
        raise NotImplementedError

    def __call__(self, *args, **kwargs) -> Tensor:
        return self.forward(*args, **kwargs)

    def parameters(self) -> Iterator[Parameter]:
        """Yield this module's and all submodules' parameters."""
        seen: set[int] = set()
        for module in self.modules():
            for value in vars(module).values():
                if isinstance(value, Parameter) and id(value) not in seen:
                    seen.add(id(value))
                    yield value

    def modules(self) -> Iterator["Module"]:
        """Yield self and all transitively-contained submodules.

        Each module object is yielded exactly once, even when it is
        reachable through several attributes (an aliased submodule) —
        otherwise shared layers would be visited once per reference,
        double-toggling ``train()``/``eval()`` and double-counting in
        any per-module accounting.
        """
        yield from self._modules_once(set())

    def _modules_once(self, seen: set[int]) -> Iterator["Module"]:
        if id(self) in seen:
            return
        seen.add(id(self))
        yield self
        for value in vars(self).values():
            if isinstance(value, Module):
                yield from value._modules_once(seen)
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        yield from item._modules_once(seen)

    def named_parameters(self) -> Iterator[tuple[str, "Parameter"]]:
        """Yield ``(dotted_name, parameter)`` pairs.

        Names mirror :meth:`state_dict` keys (attribute path joined
        with dots, list/tuple containers contributing their index).  A
        parameter shared by several attributes is yielded once, under
        the first name attribute-order DFS reaches it by.
        """
        out: dict[str, Parameter] = {}
        self._collect_params(out, prefix="")
        seen: set[int] = set()
        for name, param in out.items():
            if id(param) not in seen:
                seen.add(id(param))
                yield name, param

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    def train(self, mode: bool = True) -> "Module":
        for module in self.modules():
            module.training = mode
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    def state_dict(self) -> dict[str, np.ndarray]:
        """Flat name -> array mapping of all parameters."""
        state: dict[str, np.ndarray] = {}
        self._collect_state(state, prefix="")
        return state

    def _collect_state(self, state: dict[str, np.ndarray],
                       prefix: str) -> None:
        for attr, value in vars(self).items():
            key = f"{prefix}{attr}"
            if isinstance(value, Parameter):
                state[key] = value.data
            elif isinstance(value, Module):
                value._collect_state(state, prefix=f"{key}.")
            elif isinstance(value, (list, tuple)):
                for index, item in enumerate(value):
                    if isinstance(item, Module):
                        item._collect_state(state,
                                            prefix=f"{key}.{index}.")

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Copy arrays into matching parameters (shapes must agree)."""
        own = {}
        self._collect_params(own, prefix="")
        missing = set(own) - set(state)
        if missing:
            raise KeyError(f"state dict missing keys: {sorted(missing)}")
        for key, param in own.items():
            array = np.asarray(state[key], dtype=get_default_dtype())
            if array.shape != param.data.shape:
                raise ValueError(
                    f"shape mismatch for {key}: "
                    f"{array.shape} vs {param.data.shape}")
            param.data = array.copy()

    def _collect_params(self, out: dict[str, Parameter],
                        prefix: str) -> None:
        for attr, value in vars(self).items():
            key = f"{prefix}{attr}"
            if isinstance(value, Parameter):
                out[key] = value
            elif isinstance(value, Module):
                value._collect_params(out, prefix=f"{key}.")
            elif isinstance(value, (list, tuple)):
                for index, item in enumerate(value):
                    if isinstance(item, Module):
                        item._collect_params(out, prefix=f"{key}.{index}.")

    def _generators(self) -> dict[str, np.random.Generator]:
        """Unique RNGs held by stochastic submodules, keyed by the
        deterministic order :meth:`modules` yields them in (layers
        typically share one Generator; it appears once)."""
        found: dict[str, np.random.Generator] = {}
        seen: set[int] = set()
        for module in self.modules():
            rng = getattr(module, "_rng", None)
            if (isinstance(rng, np.random.Generator)
                    and id(rng) not in seen):
                seen.add(id(rng))
                found[f"rng{len(found)}"] = rng
        return found

    def rng_states(self) -> dict[str, dict]:
        """Bit-generator states of all stochastic submodules.

        Training checkpoints persist these alongside the parameters:
        dropout draws from these generators every training step, so a
        resumed run must continue the stream mid-sequence — a freshly
        seeded model would replay masks from the beginning and
        diverge from the run it claims to continue.
        """
        return {key: rng.bit_generator.state
                for key, rng in self._generators().items()}

    def load_rng_states(self, states: dict[str, dict]) -> None:
        """Restore generator states captured by :meth:`rng_states`."""
        generators = self._generators()
        for key, state in states.items():
            if key in generators:
                generators[key].bit_generator.state = state


class Linear(Module):
    """Fully-connected layer: ``y = x @ W + b``."""

    def __init__(self, in_features: int, out_features: int,
                 rng: np.random.Generator, bias: bool = True):
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(
            initializers.xavier_uniform((in_features, out_features), rng),
            name="linear.weight")
        self.bias = Parameter(np.zeros(out_features), name="linear.bias") \
            if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out


class Embedding(Module):
    """Token-id -> vector lookup with sparse gradient accumulation.

    ``id_aliases`` (optional, settable after construction) is an int
    array of length ``vocab_size`` applied to ids before lookup.  It
    implements embedding-level token merging — e.g. gensim-style
    min_count trimming, where rare tokens keep their vocabulary ids
    (so encode/decode stays lossless) but share UNK's embedding row
    for both the forward lookup and the gradient accumulation.
    """

    def __init__(self, vocab_size: int, dim: int,
                 rng: np.random.Generator,
                 weights: np.ndarray | None = None,
                 id_aliases: np.ndarray | None = None):
        super().__init__()
        self.vocab_size = vocab_size
        self.dim = dim
        self.id_aliases = (None if id_aliases is None
                           else np.asarray(id_aliases, dtype=np.int64))
        if weights is not None:
            if weights.shape != (vocab_size, dim):
                raise ValueError("pretrained embedding shape mismatch")
            data = np.asarray(weights, dtype=get_default_dtype()).copy()
        else:
            data = initializers.uniform((vocab_size, dim), rng, 0.5)
        self.weight = Parameter(data, name="embedding.weight")

    def forward(self, token_ids: np.ndarray) -> Tensor:
        ids = np.asarray(token_ids, dtype=np.int64)
        if self.id_aliases is not None:
            ids = self.id_aliases[ids]
        weight = self.weight
        out_data = weight.data[ids]

        def backward(grad: np.ndarray) -> None:
            if weight.requires_grad:
                full = np.zeros_like(weight.data)
                np.add.at(full, ids.reshape(-1),
                          grad.reshape(-1, weight.data.shape[1]))
                weight._accumulate(full)

        probe = Tensor(0.0)
        return probe._make(out_data, (weight,), backward)


class Dropout(Module):
    """Inverted dropout; identity in eval mode."""

    def __init__(self, rate: float, rng: np.random.Generator):
        super().__init__()
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"dropout rate {rate} outside [0, 1)")
        self.rate = rate
        self._rng = rng

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.rate == 0.0:
            return x
        return x.dropout(self.rate, self._rng)


class Conv1d(Module):
    """1-D convolution over (batch, channels, length)."""

    def __init__(self, in_channels: int, out_channels: int, kernel: int,
                 rng: np.random.Generator, stride: int = 1,
                 padding: int = 0, bias: bool = True):
        super().__init__()
        self.stride = stride
        self.padding = padding
        self.kernel = kernel
        self.weight = Parameter(
            initializers.he_uniform((out_channels, in_channels, kernel),
                                    rng),
            name="conv1d.weight")
        self.bias = Parameter(np.zeros(out_channels), name="conv1d.bias") \
            if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return conv1d(x, self.weight, self.bias, stride=self.stride,
                      padding=self.padding)


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class Tanh(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()


class Sigmoid(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.sigmoid()


class Flatten(Module):
    def forward(self, x: Tensor) -> Tensor:
        batch = x.shape[0]
        return x.reshape(batch, -1)


class Sequential(Module):
    """Run modules in order."""

    def __init__(self, *modules: Module):
        super().__init__()
        self.steps = list(modules)

    def forward(self, x: Tensor) -> Tensor:
        for module in self.steps:
            x = module(x)
        return x
