"""Fig 5 — classical static tools vs SEVulDet.

Paper shape (program-level verdicts):
* Flawfinder and RATS: high FPR and/or FNR (lexical matching only);
* Checkmarx: better than the grep tools but still weak;
* VUDDY: near-zero FPR, very high FNR (exact-clone matching);
* SEVulDet dominates all of them on F1.
"""

from repro.baselines.checkmarx import CheckmarxScanner
from repro.baselines.flawfinder import FlawfinderScanner
from repro.baselines.rats import RatsScanner
from repro.baselines.vuddy import VuddyScanner
from repro.core.detector import SEVulDet
from repro.eval.comparison import evaluate_static_tool

from conftest import run_once

PAPER_NOTE = {
    "Flawfinder": "high FPR+FNR", "RATS": "high FPR+FNR",
    "Checkmarx": "better, still high", "VUDDY": "low FPR / high FNR",
    "SEVulDet": "dominates",
}


def test_fig5_static_tool_comparison(benchmark, reporter, scale,
                                     train_cases, test_cases):
    def experiment():
        vuddy = VuddyScanner()
        for case in train_cases:
            if case.vulnerable:
                vuddy.add_vulnerable(case.source)

        detector = SEVulDet(scale=scale, seed=31)
        detector.fit(train_cases)

        class LearnedTool:
            name = "SEVulDet"

            def flags(self, source: str) -> bool:
                return bool(detector.detect(source))

        tools = [FlawfinderScanner(), RatsScanner(),
                 CheckmarxScanner(), vuddy, LearnedTool()]
        return {tool.name: evaluate_static_tool(tool, test_cases)
                for tool in tools}

    results = run_once(benchmark, experiment)

    table = reporter("fig5_static_tools",
                     "Fig 5 — classical static tools vs SEVulDet "
                     "(program-level verdicts)")
    for name, metrics in results.items():
        table.add(tool=name, **metrics.as_percentages(),
                  paper_shape=PAPER_NOTE[name])
    table.save_and_print()

    # Shape 1: SEVulDet's F1 dominates every classical tool.
    for name in ("Flawfinder", "RATS", "Checkmarx", "VUDDY"):
        assert results["SEVulDet"].f1 > results[name].f1, name

    # Shape 2: VUDDY trades FNR for FPR — lowest FPR of the classical
    # tools, and a high FNR.
    classical_fprs = {name: results[name].fpr
                      for name in ("Flawfinder", "RATS", "Checkmarx",
                                   "VUDDY")}
    assert results["VUDDY"].fpr == min(classical_fprs.values())
    assert results["VUDDY"].fnr > 0.5

    # Shape 3: the lexical scanners are substantially wrong somewhere
    # (the sum of their error rates is large).
    for name in ("Flawfinder", "RATS"):
        assert results[name].fpr + results[name].fnr > 0.4, name
