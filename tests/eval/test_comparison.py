"""Tests for the framework-comparison harness."""

import pytest

from repro.core.config import Scale
from repro.datasets.sard import generate_sard_corpus
from repro.eval.comparison import (FRAMEWORKS, evaluate_static_tool,
                                   train_and_evaluate)

TINY = Scale("tiny", cases_per_experiment=20, dim=8, channels=8,
             hidden=8, epochs=3, batch_size=16, time_steps=20,
             w2v_epochs=1, learning_rate=5e-3)


class TestFrameworkSpecs:
    def test_all_paper_systems_registered(self):
        assert {"VulDeePecker", "SySeVR", "SEVulDet"} <= set(FRAMEWORKS)

    def test_vuldeepecker_is_fc_only_data_only(self):
        spec = FRAMEWORKS["VulDeePecker"]
        assert spec.categories == ("FC",)
        assert not spec.use_control
        assert spec.gadget_kind == "classic"

    def test_sysevr_uses_control(self):
        spec = FRAMEWORKS["SySeVR"]
        assert spec.use_control
        assert spec.categories is None

    def test_sevuldet_is_path_sensitive(self):
        assert FRAMEWORKS["SEVulDet"].gadget_kind == "path-sensitive"


class TestTrainAndEvaluate:
    @pytest.fixture(scope="class")
    def corpora(self):
        return (generate_sard_corpus(24, seed=51),
                generate_sard_corpus(10, seed=52))

    def test_sevuldet_runs_end_to_end(self, corpora):
        train, test = corpora
        metrics, dataset = train_and_evaluate(
            FRAMEWORKS["SEVulDet"], train, test, TINY, seed=1)
        assert 0.0 <= metrics.f1 <= 1.0
        assert len(dataset.samples) > 0

    def test_fixed_length_framework_runs(self, corpora):
        train, test = corpora
        metrics, _ = train_and_evaluate(
            FRAMEWORKS["SySeVR"], train, test, TINY, seed=1)
        assert 0.0 <= metrics.accuracy <= 1.0

    def test_gadget_kind_override(self, corpora):
        train, test = corpora
        metrics, dataset = train_and_evaluate(
            FRAMEWORKS["BLSTM"], train, test, TINY, seed=1,
            gadget_kind="path-sensitive")
        assert dataset.gadgets[0].kind == "path-sensitive"

    def test_category_override(self, corpora):
        train, test = corpora
        _, dataset = train_and_evaluate(
            FRAMEWORKS["SEVulDet"], train, test, TINY, seed=1,
            categories=("AU",))
        assert all(g.category == "AU" for g in dataset.gadgets)

    def test_empty_gadgets_raises(self):
        with pytest.raises(ValueError):
            train_and_evaluate(FRAMEWORKS["SEVulDet"], [], [], TINY)


class TestStaticToolEvaluation:
    def test_perfect_oracle_tool(self):
        cases = generate_sard_corpus(20, seed=53)
        truth = {c.name: c.vulnerable for c in cases}

        class Oracle:
            name = "Oracle"

            def flags(self, source):
                return any(c.source == source and c.vulnerable
                           for c in cases)

        metrics = evaluate_static_tool(Oracle(), cases)
        assert metrics.accuracy == 1.0

    def test_always_negative_tool(self):
        cases = generate_sard_corpus(20, seed=54)

        class Mute:
            name = "Mute"

            def flags(self, source):
                return False

        metrics = evaluate_static_tool(Mute(), cases)
        assert metrics.fpr == 0.0
        assert metrics.fnr == 1.0
