"""SEVulDet — the end-to-end detector (paper Fig 2, both phases).

Training phase: programs -> path-sensitive code gadgets (Steps I-III)
-> word2vec + token attention embedding (Step IV) -> CNN/SPP/CBAM model
(Step V).  Detection phase: the same preprocessing without labels; a
gadget scoring above the 0.8 threshold is reported with its criterion
location (vulnerability type and line number, as Fig 2(b) describes).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

import numpy as np

from ..datasets.manifest import TestCase
from ..embedding.vocab import Vocabulary
from ..models.sevuldet import DECISION_THRESHOLD, SEVulDetNet
from ..nn.dtype import coerce_inference_dtype
from ..nn.quantize import QuantizationReport, apply_inference_dtype
from ..nn.serialize import load_model, save_model
from ..slicing.normalize import NORMALIZE_VERSION
from .config import Scale, current_scale
from .cwe_typing import CWETyper
from .encode import EncodedDataset
from .extract import PIPELINE_VERSION, LabeledGadget, extract_gadgets
from .score import predict_proba
from .train import TrainReport
from .resilience import CaseFailure
from .telemetry import Telemetry

__all__ = ["Finding", "SEVulDet"]


@dataclass(frozen=True)
class Finding:
    """One reported (suspected) vulnerability."""

    path: str
    function: str
    line: int
    category: str
    score: float
    cwe_hint: str = ""

    def __str__(self) -> str:  # pragma: no cover - display helper
        return (f"{self.path}:{self.line} [{self.category}] "
                f"{self.function}() score={self.score:.2f}")


@dataclass
class SEVulDet:
    """High-level detector facade.

    Typical use::

        detector = SEVulDet()
        detector.fit(training_cases)
        findings = detector.detect(source_code, path="foo.c")

    Attributes:
        scale: sizing preset (dims/epochs); defaults to REPRO_SCALE.
        threshold: decision threshold (paper: 0.8).
        gadget_kind: 'path-sensitive' (default) or 'classic' for
            ablation studies.
        workers: fan gadget extraction out over this many processes
            during :meth:`fit` (0 keeps the serial path).
        cache: extraction cache (GadgetCache or directory path) that
            lets repeated fits *and* repeated detection skip the
            frontend for unchanged cases.
        case_timeout: per-case extraction wall-clock budget in
            seconds (None disables); a hanging case is skipped and
            quarantined instead of wedging :meth:`fit`.
        quarantine: poison-case list (Quarantine or JSONL path) shared
            by :meth:`fit` and :meth:`detect_case`.
        telemetry: extraction + training stage timings and counters,
            accumulated across :meth:`fit` / :meth:`detect_case` calls.
        extraction_failures: structured :class:`CaseFailure` records
            from the most recent :meth:`fit`.
    """

    scale: Scale = field(default_factory=current_scale)
    threshold: float = DECISION_THRESHOLD
    gadget_kind: str = "path-sensitive"
    seed: int = 7
    categories: tuple[str, ...] | None = None
    model: SEVulDetNet | None = None
    dataset: EncodedDataset | None = None
    typer: CWETyper | None = None
    workers: int = 0
    cache: object | None = None
    case_timeout: float | None = None
    quarantine: object | None = None
    telemetry: Telemetry = field(default_factory=Telemetry)
    extraction_failures: list[CaseFailure] = field(default_factory=list)
    #: Current weight representation: 'float32' (training precision),
    #: 'float16', or 'int8' (see :meth:`quantize`).
    inference_dtype: str = "float32"
    #: Measured guardband of the last :meth:`quantize` call.
    quantization_report: QuantizationReport | None = None

    def run_context(self, *, checkpoint_dir: str | Path | None = None,
                    resume: bool = False) -> "RunContext":
        """The detector's settings bundled as an engine
        :class:`~repro.core.engine.RunContext` (fresh failure list;
        shared cache/quarantine/telemetry)."""
        from .engine import RunContext

        return RunContext.create(
            cache=self.cache, quarantine=self.quarantine,
            telemetry=self.telemetry, checkpoint_dir=checkpoint_dir,
            case_timeout=self.case_timeout, workers=self.workers,
            resume=resume)

    def _build_net(self, dataset: EncodedDataset) -> SEVulDetNet:
        model = SEVulDetNet(
            len(dataset.vocab), dim=self.scale.dim,
            channels=self.scale.channels,
            pretrained=dataset.word2vec.vectors, seed=self.seed)
        dataset.bind_embedding_aliases(model)
        return model

    def fit(self, cases: Sequence[TestCase],
            epochs: int | None = None, *,
            checkpoint_dir: str | Path | None = None,
            resume: bool = False, ctx=None) -> TrainReport:
        """Train on labelled corpus programs.

        Runs extract -> encode -> train as a streaming
        :class:`~repro.core.engine.Engine`: extraction of later case
        chunks overlaps nothing here (encode is a barrier) but shares
        the persistent worker pool across chunks, and all stages draw
        their cache/quarantine/telemetry from one
        :class:`~repro.core.engine.RunContext`.

        With a ``checkpoint_dir``, training writes atomic per-epoch
        checkpoints and ``resume=True`` continues an interrupted fit
        from the last completed epoch (the extraction and embedding
        stages are deterministic — and typically cache-warm — so only
        the remaining classifier epochs are re-run), ending with the
        same weights as an uninterrupted fit.
        """
        from .engine import Engine, EncodeStage, ExtractStage, TrainStage

        if ctx is None:
            ctx = self.run_context(checkpoint_dir=checkpoint_dir,
                                   resume=resume)
        self.extraction_failures = ctx.failures
        engine = Engine(
            ExtractStage(self.gadget_kind, self.categories),
            EncodeStage(dim=self.scale.dim,
                        w2v_epochs=self.scale.w2v_epochs,
                        seed=self.seed),
            TrainStage(
                self._build_net,
                epochs=epochs if epochs is not None else self.scale.epochs,
                batch_size=self.scale.batch_size,
                lr=self.scale.learning_rate, seed=self.seed),
            ctx=ctx)
        result = engine.run(cases)
        self.dataset = result.dataset
        self.model = result.model
        return result.report

    def fit_typer(self, epochs: int = 12) -> list[float]:
        """Train the CWE-type head (Fig 2(b) "vulnerability type") on
        the binary detector's vulnerable training gadgets."""
        if self.dataset is None:
            raise RuntimeError("call fit() before fit_typer()")
        self.typer = CWETyper(vocab=self.dataset.vocab,
                              dim=self.scale.dim,
                              channels=self.scale.channels,
                              seed=self.seed)
        return self.typer.fit(
            self.dataset.gadgets, epochs=epochs,
            pretrained=self.dataset.word2vec.vectors,
            id_aliases=self.dataset.id_aliases)

    def _require_trained(self) -> tuple[SEVulDetNet, Vocabulary]:
        if self.model is None or self.dataset is None:
            raise RuntimeError("detector is not trained; call fit() or "
                               "load() first")
        return self.model, self.dataset.vocab

    def score_gadgets(self, gadgets: Sequence[LabeledGadget]
                      ) -> np.ndarray:
        """Raw sigmoid scores for pre-extracted gadgets."""
        model, vocab = self._require_trained()
        samples = [g.sample(vocab) for g in gadgets]
        return predict_proba(model, samples)

    def detect(self, source: str, path: str = "<memory>"
               ) -> list[Finding]:
        """Detection phase on raw source text."""
        case = TestCase(name=path, source=source, vulnerable=False,
                        vulnerable_lines=frozenset(), cwe="",
                        category="", origin="detect")
        return self.detect_case(case)

    def detect_case(self, case: TestCase) -> list[Finding]:
        """Detection phase on a corpus case (labels ignored).

        Shares the detector's extraction ``cache`` and ``telemetry``
        with :meth:`fit`, so repeated detection over the same corpus
        gets the same warm-cache win as training.
        """
        self._require_trained()
        gadgets = extract_gadgets([case], kind=self.gadget_kind,
                                  categories=self.categories,
                                  deduplicate=False,
                                  cache=self.cache,
                                  telemetry=self.telemetry,
                                  case_timeout=self.case_timeout,
                                  quarantine=self.quarantine)
        if not gadgets:
            return []
        scores = self.score_gadgets(gadgets)
        return self.findings_from(case.name, gadgets, scores)

    def findings_from(self, case_name: str,
                      gadgets: Sequence[LabeledGadget],
                      scores: np.ndarray) -> list[Finding]:
        """Threshold + rank pre-scored gadgets into findings.

        The shared tail of :meth:`detect_case` and the batched scan
        service (:mod:`repro.core.serve`) — one implementation so both
        paths report identical findings for identical scores.
        """
        findings = [
            Finding(path=case_name, function=g.criterion.function,
                    line=g.criterion.line, category=g.category,
                    score=float(score),
                    cwe_hint=(self.typer.classify(g)
                              if self.typer is not None else ""))
            for g, score in zip(gadgets, scores)
            if score >= self.threshold
        ]
        findings.sort(key=lambda f: -f.score)
        return findings

    def quantize(self, dtype: str,
                 calibration: Sequence[TestCase] | None = None
                 ) -> QuantizationReport:
        """Re-represent the trained weights at a reduced precision.

        ``dtype`` is one of the inference dtypes (``float32`` is a
        no-op cast back; ``float16`` halves the weight payload;
        ``int8`` quantizes weight matrices per tensor — see
        :mod:`repro.nn.quantize`).  Quantization is lossy, so it only
        runs from float32 weights: quantizing an already-quantized
        detector raises instead of silently compounding error.

        With a held-out ``calibration`` corpus the guardband is
        *measured*, not assumed: the corpus is extracted and scored
        before and after, and the report carries max/mean |Δprob| plus
        the verdict-flip count at :attr:`threshold`.  The report is
        also kept on :attr:`quantization_report`.
        """
        model, vocab = self._require_trained()
        dtype = coerce_inference_dtype(dtype)
        if self.inference_dtype != "float32" \
                and dtype != self.inference_dtype:
            raise ValueError(
                f"detector weights are already {self.inference_dtype}; "
                f"quantization is lossy and only runs from float32 — "
                f"reload the float32 archive first")
        gadgets = []
        baseline = np.zeros(0)
        if calibration:
            gadgets = extract_gadgets(
                list(calibration), kind=self.gadget_kind,
                categories=self.categories, deduplicate=False,
                cache=self.cache, telemetry=self.telemetry,
                quarantine=self.quarantine)
            baseline = self.score_gadgets(gadgets)
        report = apply_inference_dtype(model, dtype)
        if gadgets:
            scores = self.score_gadgets(gadgets)
            delta = np.abs(scores.astype(np.float64)
                           - baseline.astype(np.float64))
            flips = int(np.sum((scores >= self.threshold)
                               != (baseline >= self.threshold)))
            report.calibration_samples = len(gadgets)
            report.max_abs_delta = float(delta.max())
            report.mean_abs_delta = float(delta.mean())
            report.flips = flips
            report.flip_rate = flips / len(gadgets)
        self.inference_dtype = dtype
        self.quantization_report = report
        return report

    def config_token(self) -> str:
        """Digest of everything that determines a case's verdict.

        Result caches (the scan service's LRU) key on
        ``(case fingerprint, config_token)``: model weights, decision
        threshold, extraction settings, the inference dtype, and the
        pipeline/normalizer versions all change the verdict, so any of
        them changing must miss the cache.
        """
        model, vocab = self._require_trained()
        digest = hashlib.sha256()
        digest.update(f"threshold={self.threshold};"
                      f"kind={self.gadget_kind};"
                      f"categories={self.categories};"
                      f"pipeline={PIPELINE_VERSION};"
                      f"normalize={NORMALIZE_VERSION};"
                      f"vocab={len(vocab)};"
                      f"dtype={self.inference_dtype};"
                      f"typer={self.typer is not None}".encode())
        for name, array in sorted(model.state_dict().items()):
            digest.update(name.encode())
            digest.update(np.ascontiguousarray(array).tobytes())
        return digest.hexdigest()

    def flags_case(self, case: TestCase) -> bool:
        """Program-level verdict: any gadget above threshold."""
        return bool(self.detect_case(case))

    # -- persistence ---------------------------------------------------------

    def save(self, path: str | Path) -> None:
        """Persist the binary model's weights + vocabulary.

        The optional CWE-type head (:meth:`fit_typer`) is not part of
        the archive; retrain it after :meth:`load` when type hints are
        needed.
        """
        model, vocab = self._require_trained()
        aliases = model.embedding.id_aliases
        rare_ids = ([] if aliases is None else
                    [int(i) for i in np.flatnonzero(
                        aliases != np.arange(len(aliases)))])
        save_model(model, path, metadata={
            "tokens": vocab.id_to_token,
            "threshold": self.threshold,
            "gadget_kind": self.gadget_kind,
            "dim": self.scale.dim,
            "channels": self.scale.channels,
            "rare_token_ids": rare_ids,
            "pipeline_version": PIPELINE_VERSION,
            "normalize_version": NORMALIZE_VERSION,
            "inference_dtype": self.inference_dtype,
        })

    def load(self, path: str | Path) -> None:
        """Restore a detector persisted with :meth:`save`.

        Reads the metadata first to size the model, then loads
        weights.  Archives written by a different pipeline/normalize
        version, or whose vocabulary disagrees with the stored
        embedding, are rejected with a ``ValueError`` naming the
        mismatch instead of surfacing as a downstream shape error or
        silently mis-tokenized scans.
        """
        import json

        from ..embedding.word2vec import Word2Vec

        with np.load(Path(path)) as archive:
            metadata = json.loads(
                archive["__metadata__"].tobytes().decode())
            embedding_shape = (
                archive["embedding.weight"].shape
                if "embedding.weight" in archive.files else None)
        for field_name, current in (
                ("pipeline_version", PIPELINE_VERSION),
                ("normalize_version", NORMALIZE_VERSION)):
            saved = metadata.get(field_name)
            if saved is not None and saved != current:
                raise ValueError(
                    f"model archive {path} was built with "
                    f"{field_name}={saved} but this code uses "
                    f"{field_name}={current}; its gadget tokenization "
                    f"is incompatible — re-train the model")
        if embedding_shape is not None:
            n_tokens = len(metadata["tokens"])
            if embedding_shape[0] != n_tokens:
                raise ValueError(
                    f"model archive {path} is inconsistent: the "
                    f"embedding matrix has {embedding_shape[0]} rows "
                    f"but the metadata lists {n_tokens} vocabulary "
                    f"tokens — the archive is corrupt or mixes files "
                    f"from different runs")
            if embedding_shape[1] != metadata["dim"]:
                raise ValueError(
                    f"model archive {path} is inconsistent: the "
                    f"embedding width is {embedding_shape[1]} but the "
                    f"metadata says dim={metadata['dim']}")
        vocab = Vocabulary()
        for token in metadata["tokens"][2:]:  # skip PAD/UNK
            vocab.add(token)
        model = SEVulDetNet(len(vocab), dim=metadata["dim"],
                            channels=metadata["channels"])
        load_model(model, path)
        # load_state_dict lands weights in the session default dtype;
        # a float16 archive is restored exactly by re-casting (f16 ->
        # f32 -> f16 is lossless).  int8 archives already hold the
        # dequantized float32 grid values, so only the tag is restored.
        inference_dtype = metadata.get("inference_dtype", "float32")
        if inference_dtype == "float16":
            apply_inference_dtype(model, "float16")
        self.inference_dtype = inference_dtype
        self.quantization_report = None
        rare_ids = metadata.get("rare_token_ids", [])
        id_aliases = None
        if rare_ids:
            id_aliases = np.arange(len(vocab), dtype=np.int64)
            id_aliases[rare_ids] = 1
            model.embedding.id_aliases = id_aliases
        self.model = model
        self.threshold = metadata["threshold"]
        self.gadget_kind = metadata["gadget_kind"]
        word2vec = Word2Vec(vocab, dim=metadata["dim"])
        word2vec.input_vectors = model.embedding.weight.data.copy()
        self.dataset = EncodedDataset([], vocab, word2vec,
                                      id_aliases=id_aliases)
