"""Tests for parameter initializers (variance scaling, determinism)."""

import numpy as np
import pytest

from repro.nn import init as initializers


@pytest.fixture
def rng():
    return np.random.default_rng(42)


class TestVarianceScaling:
    def test_xavier_uniform_bounds(self, rng):
        weights = initializers.xavier_uniform((200, 300), rng)
        limit = np.sqrt(6.0 / (200 + 300))
        assert np.abs(weights).max() <= limit
        assert np.abs(weights).max() > 0.8 * limit  # actually spans

    def test_xavier_normal_std(self, rng):
        weights = initializers.xavier_normal((400, 400), rng)
        expected = np.sqrt(2.0 / 800)
        assert abs(weights.std() - expected) / expected < 0.1

    def test_he_uniform_fan_in_only(self, rng):
        narrow = initializers.he_uniform((100, 10), rng)
        wide = initializers.he_uniform((1000, 10), rng)
        assert np.abs(narrow).max() > np.abs(wide).max()

    def test_he_normal_std(self, rng):
        weights = initializers.he_normal((500, 100), rng)
        expected = np.sqrt(2.0 / 500)
        assert abs(weights.std() - expected) / expected < 0.1

    def test_conv_fans_use_receptive_field(self, rng):
        # (out, in, kernel): fan_in = in * kernel
        small_kernel = initializers.he_uniform((8, 4, 1), rng)
        big_kernel = initializers.he_uniform((8, 4, 25), rng)
        assert np.abs(small_kernel).max() > np.abs(big_kernel).max()

    def test_uniform_limit(self, rng):
        weights = initializers.uniform((50, 50), rng, limit=0.2)
        assert np.abs(weights).max() <= 0.2

    def test_zeros(self):
        assert not initializers.zeros((3, 3)).any()

    def test_deterministic_given_generator_state(self):
        a = initializers.xavier_uniform(
            (10, 10), np.random.default_rng(7))
        b = initializers.xavier_uniform(
            (10, 10), np.random.default_rng(7))
        assert np.allclose(a, b)

    def test_vector_shape(self, rng):
        bias_like = initializers.xavier_uniform((32,), rng)
        assert bias_like.shape == (32,)
