"""The SEVulDet network (paper Steps IV-V, Fig 2).

Pipeline per gadget: word2vec embedding -> token attention (Step IV)
-> full-embedding-width 1-D convolution -> CBAM channel + spatial
attention -> spatial pyramid pooling -> dense 256 -> 64 -> 1 (Step V).
The SPP output width is fixed regardless of gadget length, so the model
accepts flexible-length inputs; the decision threshold is the paper's
0.8 on the sigmoid output.
"""

from __future__ import annotations

import numpy as np

from ..nn import (CBAM, Conv1d, Dropout, Embedding, Linear, Module,
                  SpatialPyramidPooling1d, Tensor, TokenAttention,
                  stable_sigmoid)
from .fused import InferenceKernel

__all__ = ["SEVulDetNet", "DECISION_THRESHOLD"]

#: Paper Step V: "If this number is greater than 0.8, the output is
#: flawed."
DECISION_THRESHOLD = 0.8


class SEVulDetNet(Module):
    """CNN with token attention, CBAM, and SPP.

    Args:
        vocab_size: embedding rows.
        dim: embedding width (paper Table IV: 30).
        channels: convolution output channels.
        kernel: convolution kernel length along the token axis.
        dropout: dropout rate before the dense head (paper: 0.2).
        use_token_attention / use_cbam: ablation switches (Table III's
            CNN / CNN-TokenATT / CNN-MultiATT rows).
        pretrained: optional (vocab, dim) word2vec matrix.
    """

    fixed_length: int | None = None  # flexible-length model

    def __init__(self, vocab_size: int, dim: int = 30, channels: int = 32,
                 kernel: int = 3, dropout: float = 0.2,
                 use_token_attention: bool = True, use_cbam: bool = True,
                 pretrained: np.ndarray | None = None,
                 bins: tuple[int, ...] = (4, 2, 1),
                 seed: int = 7):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.embedding = Embedding(vocab_size, dim, rng,
                                   weights=pretrained)
        self.use_token_attention = use_token_attention
        self.use_cbam = use_cbam
        self.kernel = kernel
        if use_token_attention:
            self.token_attention = TokenAttention(dim, rng)
        self.conv = Conv1d(dim, channels, kernel, rng,
                           padding=kernel // 2)
        if use_cbam:
            self.cbam = CBAM(channels, rng)
        self.spp = SpatialPyramidPooling1d(bins=bins)
        spp_out = self.spp.output_features(channels)
        self.fc1 = Linear(spp_out, 256, rng)
        self.fc2 = Linear(256, 64, rng)
        self.fc3 = Linear(64, 1, rng)
        self.dropout = Dropout(dropout, rng)
        self._infer_kernel: InferenceKernel | None = None

    def forward(self, token_ids: np.ndarray) -> Tensor:
        """(batch, length) int ids -> (batch,) logits."""
        embedded = self.embedding(token_ids)          # (B, T, D)
        if self.use_token_attention:
            embedded = self.token_attention(embedded)
        features = embedded.transpose(0, 2, 1)        # (B, D, T)
        features = self.conv(features).relu()         # (B, C, T)
        if self.use_cbam:
            features = self.cbam(features)
        pooled = self.spp(features)                   # (B, 7C)
        hidden = self.dropout(self.fc1(pooled).relu())
        hidden = self.dropout(self.fc2(hidden).relu())
        return self.fc3(hidden).reshape(-1)           # logits

    def forward_inference(self, token_ids: np.ndarray) -> np.ndarray:
        """Inference-only fused forward: (batch, length) ids ->
        (batch,) logit ndarray, no autograd graph.

        Bit-identical to ``forward(ids).data`` at float32 (pinned by
        ``tests/models/test_fused.py``); under float16/int8 weights it
        is the measured-guardband path (see
        :meth:`repro.core.detector.SEVulDet.quantize`).  Dropout is
        treated as identity, so callers must be in eval mode — exactly
        the regime :meth:`predict_proba` routes through it.
        """
        kernel = self._infer_kernel
        if kernel is None:
            kernel = self._infer_kernel = InferenceKernel(self)
        return kernel(token_ids)

    def predict_proba(self, token_ids: np.ndarray) -> np.ndarray:
        """Sigmoid scores in [0, 1] (stable under any compute dtype).

        In eval mode the logits come from the fused
        :meth:`forward_inference` kernel; a model still in training
        mode falls back to the graph forward so dropout stays live.
        """
        logits = (self.forward(token_ids).data if self.training
                  else self.forward_inference(token_ids))
        return stable_sigmoid(logits)

    def attention_weights(self, token_ids: np.ndarray) -> np.ndarray:
        """Token-attention weights for one batch (RQ4 hook).

        Returns (batch, length) softmax weights; requires
        ``use_token_attention``.  The model's training mode is
        restored afterwards, so a mid-training inspection cannot
        silently leave dropout disabled for the rest of the run.
        """
        if not self.use_token_attention:
            raise ValueError("model was built without token attention")
        was_training = self.training
        self.eval()
        try:
            self.forward(token_ids)
        finally:
            self.train(was_training)
        assert self.token_attention.last_weights is not None
        return self.token_attention.last_weights
