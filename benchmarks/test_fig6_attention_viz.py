"""Fig 6 (RQ4) — attention-weight interpretability on CVE-2016-9776.

The paper feeds the mcf_fec path-sensitive gadget (711 tokens, no
truncation) into the trained model, hooks the token-attention weights,
and shows that the top-10 tokens cluster on the loop-forming lines.
Here: same pipeline on the miniature — the flexible-length model
ingests the whole gadget, and the attention mass concentrated on the
vulnerable loop lines must exceed a uniform allocation.
"""

import numpy as np

from repro.core.attention_hook import attention_report, weights_by_line
from repro.core.detector import SEVulDet
from repro.core.pipeline import extract_gadgets
from repro.datasets.xen import cve_2016_9776

from conftest import run_once


def test_fig6_attention_visualization(benchmark, reporter, scale,
                                      train_cases, xen_train_cases):
    def experiment():
        detector = SEVulDet(scale=scale, seed=43)
        detector.fit(train_cases + xen_train_cases)
        case = cve_2016_9776(vulnerable=True)
        gadgets = extract_gadgets([case], deduplicate=False,
                                  keep_gadget=True)
        # the receive-loop gadget: one anchored inside mcf_fec_receive
        # covering the vulnerable lines
        candidates = [g for g in gadgets
                      if g.criterion.function == "mcf_fec_receive"
                      and g.label == 1]
        gadget = max(candidates, key=lambda g: len(g.tokens))
        model = detector.model
        vocab = detector.dataset.vocab
        top = attention_report(model, vocab, gadget, top_k=10)
        by_line = weights_by_line(model, vocab, gadget)
        return case, gadget, top, by_line

    case, gadget, top, by_line = run_once(benchmark, experiment)

    table = reporter("fig6_attention",
                     "Fig 6 — top-10 attention tokens, CVE-2016-9776 "
                     "path-sensitive gadget")
    for entry in top:
        table.add(rank=top.index(entry) + 1, token=entry.token,
                  position=entry.position,
                  weight=round(entry.weight, 5),
                  percent_of_peak=entry.percent)
    table.save_and_print()

    line_table = reporter("fig6_attention_by_line",
                          "Fig 6 — attention mass per gadget line")
    source_lines = case.source.split("\n")
    for line_no in sorted(by_line):
        line_text = source_lines[line_no - 1].strip() \
            if line_no <= len(source_lines) else ""
        line_table.add(line=line_no,
                       attention=round(by_line[line_no], 4),
                       vulnerable=line_no in case.vulnerable_lines,
                       text=line_text[:48])
    line_table.save_and_print()

    # The model ingests the whole gadget: no truncation happened.
    assert len(gadget.tokens) > 40

    # Interpretability shape: attention mass on the vulnerable lines
    # exceeds their uniform share of the gadget.
    vulnerable_mass = sum(weight for line, weight in by_line.items()
                          if line in case.vulnerable_lines)
    uniform_share = (sum(1 for line in by_line
                         if line in case.vulnerable_lines)
                     / max(len(by_line), 1))
    assert vulnerable_mass > 0
    assert vulnerable_mass >= uniform_share * 0.8, \
        (vulnerable_mass, uniform_share)

    # Top-10 report is sorted and normalised to its peak.
    weights = [entry.weight for entry in top]
    assert weights == sorted(weights, reverse=True)
    assert top[0].percent == 100.0
