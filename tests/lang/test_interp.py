"""Tests for the memory-safety-checking interpreter."""

import pytest

from repro.lang.interp import (Interpreter, Pointer, ViolationKind,
                               run_program)
from repro.lang.parser import parse


def run(body: str, stdin: bytes = b"", max_steps: int = 50_000,
        trap_overflow: bool = False):
    return run_program(f"int main() {{\n{body}\nreturn 0;\n}}",
                       stdin=stdin, max_steps=max_steps,
                       trap_overflow=trap_overflow)


class TestArithmetic:
    def test_integer_ops(self):
        result = run('printf("%d", (7 + 3) * 2 - 5 / 2);')
        assert result.output == "18"

    def test_c_division_truncates_toward_zero(self):
        result = run('printf("%d %d", -7 / 2, 7 / -2);')
        assert result.output == "-3 -3"

    def test_modulo_sign_follows_dividend(self):
        result = run('printf("%d %d", -7 % 2, 7 % -2);')
        assert result.output == "-1 1"

    def test_division_by_zero_detected(self):
        result = run("int a = 1 / 0;")
        assert result.violation.kind is ViolationKind.DIVISION_BY_ZERO

    def test_modulo_by_zero_detected(self):
        result = run("int a = 1 % 0;")
        assert result.violation.kind is ViolationKind.DIVISION_BY_ZERO

    def test_int_overflow_wraps_by_default(self):
        result = run('int a = 2147483647;\na = a + 1;\nprintf("%d", a);')
        assert result.ok
        assert result.output == "-2147483648"
        assert result.overflow_events

    def test_int_overflow_traps_when_asked(self):
        result = run("int a = 2147483647;\na = a + 1;",
                     trap_overflow=True)
        assert result.violation.kind is ViolationKind.INTEGER_OVERFLOW

    def test_bitwise_and_shifts(self):
        result = run('printf("%d %d %d", 6 & 3, 6 | 3, 1 << 4);')
        assert result.output == "2 7 16"

    def test_comparisons_produce_01(self):
        result = run('printf("%d%d%d", 2 < 3, 3 <= 2, 4 == 4);')
        assert result.output == "101"

    def test_logical_short_circuit(self):
        # The right operand would divide by zero; && must skip it.
        result = run("int a = 0;\nint b = a && (1 / a);")
        assert result.ok

    def test_ternary(self):
        result = run('printf("%d", 1 ? 10 : 20);')
        assert result.output == "10"


class TestControlFlow:
    def test_if_else(self):
        result = run('if (0) { printf("a"); } else { printf("b"); }')
        assert result.output == "b"

    def test_while_loop(self):
        result = run('int i = 0;\nwhile (i < 3) { i++; }\nprintf("%d", i);')
        assert result.output == "3"

    def test_for_loop_sum(self):
        result = run("int s = 0;\nfor (int i = 1; i <= 4; i++) { s += i; }\n"
                     'printf("%d", s);')
        assert result.output == "10"

    def test_do_while_runs_once(self):
        result = run('int i = 9;\ndo { printf("x"); } while (i < 5);')
        assert result.output == "x"

    def test_break_and_continue(self):
        result = run(
            "int s = 0;\nfor (int i = 0; i < 10; i++) {\n"
            "if (i == 2) { continue; }\nif (i == 5) { break; }\ns += i;\n}\n"
            'printf("%d", s);')
        assert result.output == "8"  # 0+1+3+4

    def test_switch_dispatch(self):
        result = run('switch (2) { case 1: printf("a"); break; '
                     'case 2: printf("b"); break; default: printf("c"); }')
        assert result.output == "b"

    def test_switch_fallthrough(self):
        result = run('switch (1) { case 1: printf("a"); '
                     'case 2: printf("b"); break; default: printf("c"); }')
        assert result.output == "ab"

    def test_switch_default(self):
        result = run('switch (9) { case 1: printf("a"); break; '
                     'default: printf("d"); }')
        assert result.output == "d"

    def test_goto(self):
        result = run('goto skip;\nprintf("a");\nskip: printf("b");')
        assert result.output == "b"

    def test_infinite_loop_times_out(self):
        result = run("while (1) { }", max_steps=500)
        assert result.hung

    def test_function_call_and_return(self):
        source = ("int twice(int x) { return x * 2; }\n"
                  'int main() { printf("%d", twice(21)); return 0; }')
        assert run_program(source).output == "42"

    def test_recursion(self):
        source = ("int fact(int n) { if (n < 2) { return 1; } "
                  "return n * fact(n - 1); }\n"
                  'int main() { printf("%d", fact(5)); return 0; }')
        assert run_program(source).output == "120"

    def test_exit_code(self):
        result = run("exit(3);")
        assert result.exit_code == 3


class TestMemorySafety:
    def test_oob_write_detected(self):
        result = run("char buf[4];\nbuf[4] = 1;")
        assert result.violation.kind is ViolationKind.OUT_OF_BOUNDS_WRITE

    def test_oob_read_detected(self):
        result = run("char buf[4];\nchar c = buf[9];")
        assert result.violation.kind is ViolationKind.OUT_OF_BOUNDS_READ

    def test_negative_index_detected(self):
        result = run("char buf[4];\nbuf[-1] = 1;")
        assert result.violation.kind is ViolationKind.OUT_OF_BOUNDS_WRITE

    def test_in_bounds_access_ok(self):
        result = run("char buf[4];\nbuf[3] = 65;\nprintf(\"%c\", buf[3]);")
        assert result.ok and result.output == "A"

    def test_use_after_free(self):
        result = run("char *p = (char *)malloc(4);\nfree(p);\np[0] = 1;")
        assert result.violation.kind is ViolationKind.USE_AFTER_FREE

    def test_double_free(self):
        result = run("char *p = (char *)malloc(4);\nfree(p);\nfree(p);")
        assert result.violation.kind is ViolationKind.DOUBLE_FREE

    def test_free_null_is_noop(self):
        result = run("char *p = NULL;\nfree(p);")
        assert result.ok

    def test_free_stack_pointer_invalid(self):
        result = run("char buf[4];\nfree(buf);")
        assert result.violation.kind is ViolationKind.INVALID_FREE

    def test_null_deref(self):
        result = run("char *p = NULL;\np[0] = 1;")
        assert result.violation.kind is ViolationKind.NULL_DEREFERENCE

    def test_malloc_zero_returns_null(self):
        result = run('char *p = (char *)malloc(0);\n'
                     'if (p == NULL) { printf("null"); }')
        assert result.output == "null"

    def test_huge_malloc_returns_null(self):
        result = run('char *p = (char *)malloc(99999999);\n'
                     'if (p == NULL) { printf("null"); }')
        assert result.output == "null"

    def test_violation_records_line(self):
        result = run("char buf[2];\nbuf[5] = 1;")
        assert result.violation.line == 3


class TestLibrary:
    def test_strcpy_and_strlen(self):
        result = run('char buf[16];\nstrcpy(buf, "hello");\n'
                     'printf("%d", strlen(buf));')
        assert result.output == "5"

    def test_strncpy_truncates(self):
        result = run('char buf[16];\nmemset(buf, 0, 16);\n'
                     'strncpy(buf, "hello", 2);\nprintf("%s", buf);')
        assert result.output == "he"

    def test_strcat(self):
        result = run('char buf[16];\nstrcpy(buf, "ab");\n'
                     'strcat(buf, "cd");\nprintf("%s", buf);')
        assert result.output == "abcd"

    def test_strcmp(self):
        result = run('printf("%d %d", strcmp("a", "a"), '
                     'strcmp("a", "b") < 0);')
        assert result.output == "0 1"

    def test_memcpy(self):
        result = run('char a[4] = "xyz";\nchar b[4];\nmemcpy(b, a, 4);\n'
                     'printf("%s", b);')
        assert result.output == "xyz"

    def test_fgets_respects_limit(self):
        result = run('char buf[8];\nfgets(buf, 4, 0);\nprintf("%s", buf);',
                     stdin=b"abcdefgh\n")
        assert result.output == "abc"

    def test_gets_is_unbounded(self):
        result = run("char buf[4];\ngets(buf);", stdin=b"aaaaaaaaaa\n")
        assert result.violation.kind is ViolationKind.OUT_OF_BOUNDS_WRITE

    def test_atoi(self):
        result = run('printf("%d %d %d", atoi("42"), atoi("-7"), '
                     'atoi("12ab"));')
        assert result.output == "42 -7 12"

    def test_atoi_empty_and_garbage(self):
        result = run('printf("%d %d", atoi(""), atoi("xyz"));')
        assert result.output == "0 0"

    def test_snprintf_bounds(self):
        result = run('char buf[8];\nsnprintf(buf, 4, "%d", 123456);\n'
                     'printf("%s", buf);')
        assert result.output == "123"

    def test_format_string_missing_arg_crashes(self):
        result = run('printf("%s");')
        assert result.violation.kind is ViolationKind.OUT_OF_BOUNDS_READ

    def test_unknown_library_function_is_noop(self):
        result = run('some_unknown_call(1, 2);\nprintf("ok");')
        assert result.output == "ok"

    def test_calloc_zeroes(self):
        result = run('int *p = (int *)calloc(4, 1);\n'
                     'printf("%d", p[0] + p[3]);')
        assert result.output == "0"

    def test_realloc_copies(self):
        result = run("char *p = (char *)malloc(2);\np[0] = 65;\n"
                     "char *q = (char *)realloc(p, 8);\n"
                     'printf("%c", q[0]);')
        assert result.output == "A"

    def test_realloc_frees_old_block(self):
        result = run("char *p = (char *)malloc(2);\n"
                      "char *q = (char *)realloc(p, 8);\np[0] = 1;")
        assert result.violation.kind is ViolationKind.USE_AFTER_FREE


class TestPointers:
    def test_address_of_scalar(self):
        source = ("void inc(int *x) { *x = *x + 1; }\n"
                  "int main() { int v = 4; inc(&v); "
                  'printf("%d", v); return 0; }')
        assert run_program(source).output == "5"

    def test_pointer_arithmetic(self):
        result = run('char buf[4] = "abc";\nchar *p = buf;\np = p + 1;\n'
                     'printf("%c", *p);')
        assert result.output == "b"

    def test_pointer_difference(self):
        result = run("char buf[8];\nchar *a = buf;\nchar *b = buf + 5;\n"
                     'printf("%d", b - a);')
        assert result.output == "5"

    def test_struct_member_access(self):
        source = ("struct pair { int x; int y; };\n"
                  "int main() {\nstruct pair p;\nstruct pair *q = &p;\n"
                  "q->x = 3;\nq->y = 4;\n"
                  'printf("%d", q->x + q->y);\nreturn 0;\n}')
        assert run_program(source).output == "7"

    def test_sizeof_array(self):
        result = run('char buf[10];\nprintf("%d", sizeof(buf));')
        assert result.output == "10"

    def test_sizeof_types(self):
        result = run('printf("%d %d %d", sizeof(char), sizeof(int), '
                     "sizeof(char *));")
        assert result.output == "1 4 8"


class TestCoverage:
    def test_branch_coverage_recorded(self):
        result = run("if (1) { int a = 1; }\nif (0) { int b = 2; }")
        assert (2, True) in result.coverage
        assert (3, False) in result.coverage

    def test_coverage_differs_between_inputs(self):
        source = ("int main() {\nchar l[8];\nfgets(l, 8, 0);\n"
                  "int n = atoi(l);\nif (n > 5) { n = 0; }\nreturn 0;\n}")
        high = run_program(source, stdin=b"9\n").coverage
        low = run_program(source, stdin=b"1\n").coverage
        assert high != low

    def test_steps_counted(self):
        assert run("int a = 1;\nint b = 2;").steps >= 2


class TestDeterminism:
    def test_rand_is_deterministic(self):
        first = run('printf("%d", rand());').output
        second = run('printf("%d", rand());').output
        assert first == second

    def test_interpreter_reusable_via_fresh_instances(self):
        unit = parse('int main() { printf("x"); return 0; }')
        out1 = Interpreter(unit).run().output
        out2 = Interpreter(unit).run().output
        assert out1 == out2 == "x"
