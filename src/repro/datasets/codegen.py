"""Program-text construction helpers for the synthetic corpora.

:class:`CodeWriter` tracks line numbers while emitting, so templates can
mark flaw lines as they write them; :class:`NamePool` hands out
plausible identifier names; the noise helpers inject semantics-neutral
statements so surface forms vary between cases.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["CodeWriter", "NamePool", "noise_statements", "wrap_in_guard"]

_VAR_WORDS = [
    "data", "buf", "buffer", "dest", "src", "input", "payload", "chunk",
    "line", "name", "path", "msg", "value", "count", "size", "len",
    "offset", "index", "total", "limit", "amount", "pos", "width",
    "result", "tmp", "item", "field", "key", "token", "block", "frame",
    "packet", "record", "entry", "slot", "state", "cursor", "extent",
]

_FUNC_WORDS = [
    "process", "handle", "parse", "copy", "load", "read", "write",
    "decode", "encode", "update", "check", "init", "transform", "apply",
    "compute", "fill", "render", "dispatch", "route", "filter", "sync",
    "collect", "emit", "scan", "pack", "unpack", "merge", "split",
]

_SUFFIX_WORDS = [
    "input", "request", "record", "buffer", "packet", "message", "field",
    "block", "frame", "entry", "chunk", "segment", "region", "payload",
]


class NamePool:
    """Deterministic, collision-free identifier source."""

    #: Identifiers templates use literally; never handed out as fresh
    #: names (prevents a generated local shadowing the 'data' param).
    RESERVED = frozenset({"data", "n", "main", "mode", "line"})

    def __init__(self, rng: np.random.Generator):
        self._rng = rng
        self._used: set[str] = set(self.RESERVED)

    def reserve(self, *names: str) -> None:
        """Mark additional names as taken."""
        self._used.update(names)

    def var(self, hint: str = "") -> str:
        """A fresh variable name, optionally themed by ``hint``."""
        base = hint or str(self._rng.choice(_VAR_WORDS))
        return self._fresh(base)

    def func(self) -> str:
        """A fresh function name like ``parse_packet``."""
        verb = str(self._rng.choice(_FUNC_WORDS))
        noun = str(self._rng.choice(_SUFFIX_WORDS))
        return self._fresh(f"{verb}_{noun}")

    def _fresh(self, base: str) -> str:
        if base not in self._used:
            self._used.add(base)
            return base
        for counter in range(2, 1000):
            candidate = f"{base}{counter}"
            if candidate not in self._used:
                self._used.add(candidate)
                return candidate
        raise RuntimeError("name pool exhausted")  # pragma: no cover


@dataclass
class CodeWriter:
    """Line-tracking source emitter."""

    lines: list[str] = field(default_factory=list)
    marked: set[int] = field(default_factory=set)
    indent: int = 0

    def line(self, text: str = "", *, mark: bool = False) -> int:
        """Emit one line; returns its 1-based number."""
        self.lines.append("    " * self.indent + text if text else "")
        number = len(self.lines)
        if mark:
            self.marked.add(number)
        return number

    def block(self, header: str) -> "_BlockContext":
        """Context manager emitting ``header {`` ... ``}``."""
        return _BlockContext(self, header)

    def blank(self) -> None:
        self.line("")

    def source(self) -> str:
        return "\n".join(self.lines) + "\n"


class _BlockContext:
    def __init__(self, writer: CodeWriter, header: str):
        self.writer = writer
        self.header = header

    def __enter__(self) -> CodeWriter:
        self.writer.line(self.header + " {")
        self.writer.indent += 1
        return self.writer

    def __exit__(self, *exc: object) -> None:
        self.writer.indent -= 1
        self.writer.line("}")


def noise_statements(writer: CodeWriter, names: NamePool,
                     rng: np.random.Generator, count: int,
                     live: str | None = None,
                     live_is_pointer: bool = False,
                     buffer: str | None = None,
                     buffer_size: int = 8) -> None:
    """Emit ``count`` flaw-neutral statements.

    When ``live`` names an in-scope variable, most emitted statements
    *read* it (never write it), so they are data-dependent on the
    attacker input.  When ``buffer`` names an in-scope char/int buffer
    of at least ``buffer_size`` elements, some statements additionally
    write flaw-neutral values into its low indices — those writes are
    weak definitions of the buffer and therefore land *inside the
    slice* of any criterion that touches the buffer, reproducing the
    dependent-but-irrelevant statement mass real SARD/NVD slices carry.
    """
    for _ in range(count):
        if buffer is not None and rng.random() < 0.45:
            _buffer_noise(writer, names, rng, buffer, buffer_size,
                          live)
            continue
        if live is not None and rng.random() < 0.7:
            _dependent_noise(writer, names, rng, live, live_is_pointer)
            continue
        choice = rng.integers(0, 5)
        if choice == 0:
            var = names.var()
            writer.line(f"int {var} = {rng.integers(0, 100)};")
        elif choice == 1:
            var = names.var()
            writer.line(f"int {var} = {rng.integers(1, 50)} * "
                        f"{rng.integers(1, 9)};")
        elif choice == 2:
            var = names.var("flag")
            writer.line(f"int {var} = 0;")
            with writer.block(f"if ({var} > {rng.integers(1, 20)})"):
                writer.line(f"{var} = {var} - 1;")
        elif choice == 3:
            var = names.var("step")
            writer.line(f"int {var} = 0;")
            with writer.block(f"for ({var} = 0; {var} < "
                              f"{rng.integers(2, 6)}; {var}++)"):
                writer.line(f"{var} = {var} + 0;")
        else:
            writer.line(f'printf("%d\\n", {rng.integers(0, 256)});')


def _buffer_noise(writer: CodeWriter, names: NamePool,
                  rng: np.random.Generator, buffer: str,
                  buffer_size: int, live: str | None) -> None:
    """One flaw-neutral write into the buffer's low indices.

    In-bounds by construction (index < ``buffer_size``), so it never
    perturbs the template's ground truth; as a weak def of ``buffer``
    it reaches any later criterion using the buffer and is pulled into
    its backward slice.
    """
    bound = max(min(buffer_size, 8), 1)
    choice = rng.integers(0, 3)
    if choice == 0:
        index = int(rng.integers(0, bound))
        writer.line(f"{buffer}[{index}] = {rng.integers(0, 100)};")
    elif choice == 1 and live is not None:
        slot = names.var("slot")
        writer.line(f"int {slot} = (({live} % {bound}) + {bound}) "
                    f"% {bound};")
        writer.line(f"{buffer}[{slot}] = {rng.integers(32, 120)};")
    else:
        i = names.var("j")
        span = int(rng.integers(2, bound + 1))
        with writer.block(f"for (int {i} = 0; {i} < {span}; {i}++)"):
            writer.line(f"{buffer}[{i}] = {i};")


def _dependent_noise(writer: CodeWriter, names: NamePool,
                     rng: np.random.Generator, live: str,
                     live_is_pointer: bool) -> None:
    """One statement group that reads (never writes) ``live``."""
    reader = f"strlen({live})" if live_is_pointer else live
    choice = rng.integers(0, 4)
    if choice == 0:
        var = names.var()
        writer.line(f"int {var} = {reader} + {rng.integers(1, 9)};")
        writer.line(f'printf("%d\\n", {var});')
    elif choice == 1:
        var = names.var("trace")
        writer.line(f"int {var} = {reader} * {rng.integers(2, 5)};")
        with writer.block(f"if ({var} > {rng.integers(20, 90)})"):
            writer.line(f"{var} = {var} % {rng.integers(7, 23)};")
        writer.line(f'printf("%d\\n", {var});')
    elif choice == 2:
        acc = names.var("acc")
        i = names.var("k")
        writer.line(f"int {acc} = 0;")
        with writer.block(f"for (int {i} = 0; {i} < "
                          f"{rng.integers(2, 5)}; {i}++)"):
            writer.line(f"{acc} = {acc} + {reader};")
        writer.line(f'printf("%d\\n", {acc});')
    else:
        var = names.var("echo")
        writer.line(f"int {var} = {reader} - {rng.integers(1, 6)};")
        writer.line(f"{var} = {var} + {rng.integers(1, 6)};")
        writer.line(f'printf("%d\\n", {var});')


def wrap_in_guard(writer: CodeWriter, rng: np.random.Generator,
                  condition_var: str) -> "_BlockContext":
    """A randomly-shaped always-true wrapper block around the payload."""
    style = rng.integers(0, 3)
    if style == 0:
        return writer.block(f"if ({condition_var} >= 0 || "
                            f"{condition_var} < 0)")
    if style == 1:
        return writer.block(f"if ({condition_var} == {condition_var})")
    return writer.block("if (1)")
