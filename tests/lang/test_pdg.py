"""Tests for PDG construction and closure queries."""

from repro.lang.parser import parse
from repro.lang.pdg import build_pdg


def pdg_of(body: str, params: str = "char *data, int n"):
    unit = parse(f"void f({params}) {{\n{body}\n}}")
    return build_pdg(unit.functions[0])


def data_lines(pdg):
    return {(pdg.node(u).line, pdg.node(v).line, var)
            for u, v, var in pdg.data_edges()}


def control_lines(pdg):
    return {(pdg.node(u).line, pdg.node(v).line, br)
            for u, v, br in pdg.control_edges()}


class TestConstruction:
    def test_data_edges_present(self):
        pdg = pdg_of("int a = n;\nint b = a;")
        assert (2, 3, "a") in data_lines(pdg)

    def test_control_edges_present(self):
        pdg = pdg_of("if (n) {\nn = 1;\n}")
        assert (2, 3, "true") in control_lines(pdg)

    def test_function_name_property(self):
        assert pdg_of("return;").function_name == "f"

    def test_nodes_on_line(self):
        pdg = pdg_of("int a = 1; int b = 2;")
        assert len(pdg.nodes_on_line(2)) == 2

    def test_calls_made(self):
        pdg = pdg_of("strncpy(data, data, n);\nint x = strlen(data);")
        calls = pdg.calls_made()
        assert "strncpy" in calls and "strlen" in calls


class TestClosures:
    def test_backward_closure_pulls_definitions(self):
        pdg = pdg_of("int a = n;\nint b = a;\nint c = b;")
        start = {x.id for x in pdg.nodes_on_line(4)}
        closure = pdg.backward_closure(start)
        lines = {pdg.node(i).line for i in closure
                 if pdg.node(i).ast is not None}
        assert {2, 3, 4} <= lines

    def test_forward_closure_pulls_uses(self):
        pdg = pdg_of("int a = n;\nint b = a;\nint c = b;")
        start = {x.id for x in pdg.nodes_on_line(2)}
        closure = pdg.forward_closure(start)
        lines = {pdg.node(i).line for i in closure
                 if pdg.node(i).ast is not None}
        assert {2, 3, 4} <= lines

    def test_control_flag_excludes_guards(self):
        pdg = pdg_of("int a = 0;\nif (n) {\na = 1;\n}\nint b = a;")
        start = {x.id for x in pdg.nodes_on_line(6)}
        with_control = pdg.backward_closure(start, control=True)
        without = pdg.backward_closure(start, control=False)
        lines_with = {pdg.node(i).line for i in with_control}
        lines_without = {pdg.node(i).line for i in without}
        assert 3 in lines_with       # the if guard
        assert 3 not in lines_without

    def test_closure_is_monotone(self):
        pdg = pdg_of("int a = n;\nint b = a;")
        small = pdg.backward_closure({pdg.nodes_on_line(3)[0].id})
        bigger = pdg.backward_closure(
            {pdg.nodes_on_line(3)[0].id, pdg.nodes_on_line(2)[0].id})
        assert small <= bigger

    def test_closure_contains_start(self):
        pdg = pdg_of("int a = 1;")
        start = {pdg.nodes_on_line(2)[0].id}
        assert start <= pdg.backward_closure(start)
        assert start <= pdg.forward_closure(start)

    def test_closure_idempotent(self):
        pdg = pdg_of("int a = n;\nint b = a;\nif (b) {\nint c = b;\n}")
        start = {x.id for x in pdg.nodes_on_line(5)}
        once = pdg.backward_closure(start)
        twice = pdg.backward_closure(once)
        assert once == twice
