"""Persistent batched scan service (the detection phase as a service).

The one-shot CLI workflow pays the model load, gadget extraction, and
an unbatched forward pass for every scanned file.  :class:`ScanService`
amortizes all three for scan-heavy workloads (CI gates, corpus sweeps,
editor integrations):

* the trained :class:`~repro.core.detector.SEVulDet` is loaded once
  and shared across every scan;
* extraction runs through the detector's content-addressed
  :class:`~repro.core.cache.GadgetCache` and
  :class:`~repro.core.resilience.Quarantine` exactly like ``fit``, so
  repeated scans of unchanged files skip the frontend and known-poison
  cases are skipped up front;
* gadget scoring flows through a micro-batching :class:`Scorer`
  (thread-backed :class:`ThreadScorer` or process-backed
  :class:`ProcessScorer`): submissions from any number of cases are
  drained from a bounded queue, grouped by padded
  length, and scored in large batches under ``no_grad``.  Because
  :func:`~repro.nn.data.bucketed_batches` groups by *exact* length, a
  row's padded representation — and therefore its score — never
  depends on which batch it lands in: verdicts are byte-identical to
  serial :meth:`~repro.core.detector.SEVulDet.detect_case` calls
  (pinned by ``tests/core/test_serve.py``);
* whole-case verdicts are memoized in a thread-safe LRU
  (:class:`ResultCache`) keyed on the case's content fingerprint plus
  the detector's :meth:`~repro.core.detector.SEVulDet.config_token`,
  so re-scanning an unchanged corpus against unchanged weights is
  near-free and a weight/threshold change can never serve a stale
  verdict.

Telemetry (queue depth, batch fill, per-case latency, cases/sec, cache
hit rates) accumulates on a service-lifetime
:class:`~repro.core.telemetry.Telemetry`; :meth:`ScanService.stats`
summarizes it and the CLI prints it under ``scan --stats``.

The service self-heals (PR 8): the process pool respawns dead workers
and resubmits their batches under a bounded
:class:`~repro.core.scorer_pool.RestartPolicy`; if the pool breaks
anyway, the service demotes down the circuit-breaker chain
``process → thread → inline`` (:data:`_FALLBACK_CHAIN`) and rescores
affected cases there — slower, byte-identical verdicts, never a lost
one.  :meth:`ScanService.health` reports ``ready`` / ``degraded`` /
``draining`` and ``stats()["resilience"]`` carries the
respawn/fallback/retry counters.
"""

from __future__ import annotations

import queue
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Iterable, Iterator, Sequence

import numpy as np

from ..datasets.manifest import TestCase
from ..nn import no_grad, pad_or_truncate
from ..nn.dtype import coerce_inference_dtype
from .detector import Finding, SEVulDet
from .engine import Engine, ExtractStage, RunContext, Stage
from .extract import CaseResult
from .score import SCORE_MIN_LENGTH
from .scorer_pool import PoolBroken, RestartPolicy, ScorerPool
from .telemetry import Telemetry

__all__ = ["CaseVerdict", "ResultCache", "ShardedResultCache",
           "ScanService", "Scorer", "ThreadScorer", "ProcessScorer",
           "InlineScorer", "PoolBroken", "expand_scan_paths",
           "case_for_file"]


def expand_scan_paths(paths: Iterable[str | Path],
                      pattern: str = "*.c") -> list[Path]:
    """Flatten files / directories into a sorted scan work-list
    (directories recurse over ``pattern``); missing paths raise
    ``FileNotFoundError``.  Shared by local and remote scanning so
    ``scan`` and ``scan --connect`` walk identical file sets."""
    files: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(sorted(path.rglob(pattern)))
        elif path.exists():
            files.append(path)
        else:
            raise FileNotFoundError(f"no such file: {path}")
    return files


def case_for_file(path: Path, name: str | None = None) -> TestCase:
    """An unlabeled scan :class:`TestCase` for one source file.

    ``name`` defaults to ``str(path)``; diff/watch scanning passes the
    tree-relative path instead so a case's fingerprint — and with it
    every verdict- and gadget-cache key — is identical across two
    checkouts of the same content.
    """
    return TestCase(
        name=name if name is not None else str(path),
        source=path.read_text(encoding="utf-8", errors="replace"),
        vulnerable=False, vulnerable_lines=frozenset(),
        cwe="", category="", origin="scan")


@dataclass(frozen=True)
class CaseVerdict:
    """One scanned case's complete result.

    Attributes:
        name: case / file name.
        fingerprint: content hash of the case (cache key component).
        status: 'flagged' (>= threshold finding), 'clean', or
            'skipped' (quarantined or extraction failed).
        findings: threshold-passing findings, highest score first.
        gadgets: number of gadgets extracted and scored.
        max_score: highest gadget score (0.0 when no gadgets).
        reason: skip reason for status='skipped', else ''.
        cached: served from the result cache (run metadata, not part
            of the verdict record).
        seconds: wall time this service spent producing the verdict.
    """

    name: str
    fingerprint: str
    status: str
    findings: tuple[Finding, ...] = ()
    gadgets: int = 0
    max_score: float = 0.0
    reason: str = ""
    cached: bool = False
    seconds: float = 0.0

    @property
    def flagged(self) -> bool:
        return self.status == "flagged"

    def as_record(self) -> dict:
        """JSONL-ready dict. Run metadata (``cached``, ``seconds``)
        is excluded so a warm re-scan emits byte-identical records."""
        return {
            "name": self.name,
            "fingerprint": self.fingerprint,
            "status": self.status,
            "gadgets": self.gadgets,
            "max_score": round(self.max_score, 6),
            "reason": self.reason,
            "findings": [
                {"function": f.function, "line": f.line,
                 "category": f.category,
                 "score": round(f.score, 6),
                 "cwe_hint": f.cwe_hint}
                for f in self.findings
            ],
        }


class ResultCache:
    """Thread-safe LRU of :class:`CaseVerdict` keyed by
    ``(case fingerprint, detector config token)``."""

    def __init__(self, capacity: int = 1024):
        if capacity < 0:
            raise ValueError("capacity must be >= 0")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._entries: OrderedDict[tuple[str, str], CaseVerdict] = \
            OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, fingerprint: str, token: str) -> CaseVerdict | None:
        with self._lock:
            verdict = self._entries.get((fingerprint, token))
            if verdict is None:
                self.misses += 1
                return None
            self._entries.move_to_end((fingerprint, token))
            self.hits += 1
            return verdict

    def put(self, fingerprint: str, token: str,
            verdict: CaseVerdict) -> None:
        if self.capacity == 0:
            return
        with self._lock:
            key = (fingerprint, token)
            self._entries[key] = verdict
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class ShardedResultCache:
    """N independent :class:`ResultCache` shards selected by
    fingerprint prefix.

    The scan server's dispatcher threads all hit the result cache on
    every request; one LRU behind one lock would serialize them.
    Fingerprints are sha256 hex, so their leading bytes spread
    uniformly — each shard sees ~1/N of the traffic and contention
    drops N-fold.  The interface matches :class:`ResultCache`, so
    :class:`ScanService` accepts either.
    """

    def __init__(self, capacity: int = 4096, shards: int = 8):
        if shards < 1:
            raise ValueError("shards must be >= 1")
        per_shard = max(1, capacity // shards) if capacity else 0
        self.shards = tuple(ResultCache(per_shard)
                            for _ in range(shards))

    def _shard(self, fingerprint: str) -> ResultCache:
        return self.shards[int(fingerprint[:8], 16)
                           % len(self.shards)]

    def get(self, fingerprint: str, token: str) -> CaseVerdict | None:
        return self._shard(fingerprint).get(fingerprint, token)

    def put(self, fingerprint: str, token: str,
            verdict: CaseVerdict) -> None:
        self._shard(fingerprint).put(fingerprint, token, verdict)

    def __len__(self) -> int:
        return sum(len(shard) for shard in self.shards)

    @property
    def hits(self) -> int:
        return sum(shard.hits for shard in self.shards)

    @property
    def misses(self) -> int:
        return sum(shard.misses for shard in self.shards)

    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class _Pending:
    """One submitted case's rows awaiting their scores.

    Completion is a countdown over the case's rows: worker threads may
    score a case's rows across several (length-grouped) batches, and
    the waiter wakes once the last row lands.
    """

    __slots__ = ("rows", "scores", "error", "done", "scorer",
                 "_lock", "_remaining")

    def __init__(self, rows: list[list[int]]):
        self.rows = rows  # padded token-id rows
        self.scores = np.zeros(len(rows))
        self.error: BaseException | None = None
        self.done = threading.Event()
        #: the scorer that accepted this case — lets the service
        #: resubmit the rows elsewhere when that scorer's pool breaks
        self.scorer: "Scorer | None" = None
        self._lock = threading.Lock()
        self._remaining = len(rows)
        if not rows:
            self.done.set()

    def _complete(self, index: int, score: float) -> None:
        self.scores[index] = score
        with self._lock:
            self._remaining -= 1
            if self._remaining <= 0:
                self.done.set()

    def _fail(self, error: BaseException) -> None:
        self.error = error
        self.done.set()

    def result(self) -> np.ndarray:
        """Block until every row is scored; (n_rows,) scores in
        submission order."""
        self.done.wait()
        if self.error is not None:
            raise self.error
        return self.scores


_STOP = object()


class Scorer:
    """Micro-batching scorer interface behind :class:`ScanService`.

    Case submissions land in a bounded queue; a drain loop blocks for
    one, then greedily takes more until it holds ``batch_size * 4``
    rows — under load batches fill to ``batch_size``, under trickle
    traffic a lone case is scored immediately (no
    latency-vs-throughput timer to tune).  Rows from all drained cases
    are grouped by their padded length (identical to the serial
    scorer's bucketing, so scores are byte-identical to
    :func:`~repro.core.score.predict_proba`) and scored in chunks of
    ``batch_size`` under ``no_grad``.

    Two backends share that policy and differ only in where the
    forward pass runs:

    * :class:`ThreadScorer` — N worker threads in-process.  Zero setup
      cost, but numpy-bound forwards contend on the GIL between the
      pure-Python stretches.
    * :class:`ProcessScorer` — N worker *processes* with the model
      weights mapped once into shared memory.  The forward pass
      escapes the GIL entirely; this is the scan server's backend.
    """

    def __init__(self, batch_size: int, workers: int, telemetry):
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.batch_size = batch_size
        self.workers = workers
        self.telemetry = telemetry
        self._queue: queue.Queue = queue.Queue(
            maxsize=max(workers * 16, 64))
        self._closed = False

    # -- submission ----------------------------------------------------------

    def _make_pending(self,
                      samples: Sequence[Sequence[int]]) -> _Pending:
        """Pad rows and tag the pending with its accepting scorer.

        Padding is idempotent (``max(len(ids), SCORE_MIN_LENGTH)`` is
        a no-op on an already-padded row), so a pending's rows can be
        resubmitted verbatim to a fallback scorer and still produce
        byte-identical scores.
        """
        pending = _Pending([
            pad_or_truncate(ids, max(len(ids), SCORE_MIN_LENGTH))
            for ids in samples
        ])
        pending.scorer = self
        return pending

    def submit(self, samples: Sequence[Sequence[int]]) -> _Pending:
        """Queue one case's token-id sequences for scoring."""
        if self._closed:
            raise RuntimeError("scorer is closed")
        pending = self._make_pending(samples)
        if pending.rows:
            self.telemetry.observe("scan_queue_depth",
                                   self._queue.qsize())
            self._queue.put(pending)
        return pending

    def health(self) -> dict:
        """Backend health; overridden where workers can die."""
        return {"status": "closed" if self._closed else "ok"}

    def close(self) -> None:
        raise NotImplementedError

    def __enter__(self) -> "Scorer":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # -- shared batching policy ----------------------------------------------

    def _drain(self) -> list[_Pending] | None:
        """Block for one submission, then greedily take more; None
        when the poison pill arrives (left queued for siblings)."""
        item = self._queue.get()
        if item is _STOP:
            self._queue.put(_STOP)
            return None
        jobs = [item]
        rows = len(item.rows)
        row_limit = self.batch_size * 4
        while rows < row_limit:
            try:
                extra = self._queue.get_nowait()
            except queue.Empty:
                break
            if extra is _STOP:
                self._queue.put(_STOP)  # keep poison for siblings
                break
            jobs.append(extra)
            rows += len(extra.rows)
        return jobs

    def _grouped(self, jobs: list[_Pending]
                 ) -> Iterator[tuple[list[tuple[_Pending, int]],
                                     np.ndarray]]:
        """Length-group and chunk drained jobs into score batches."""
        by_length: dict[int, list[tuple[_Pending, int]]] = {}
        for pending in jobs:
            for index, row in enumerate(pending.rows):
                by_length.setdefault(len(row), []).append(
                    (pending, index))
        for length in sorted(by_length):
            entries = by_length[length]
            for start in range(0, len(entries), self.batch_size):
                chunk = entries[start : start + self.batch_size]
                ids = np.array(
                    [pending.rows[index] for pending, index in chunk],
                    dtype=np.int64)
                yield chunk, ids

    def _record_batch(self, chunk) -> None:
        self.telemetry.observe("scan_batch_fill",
                               len(chunk) / self.batch_size)
        self.telemetry.count("scan_batches")
        self.telemetry.count("scan_scored_gadgets", len(chunk))

    def _poison(self) -> None:
        self._queue.put(_STOP)


class ThreadScorer(Scorer):
    """In-process backend: worker threads score under ``no_grad``."""

    def __init__(self, model, batch_size: int, workers: int,
                 telemetry):
        super().__init__(batch_size, workers, telemetry)
        self.model = model
        self._threads = [
            threading.Thread(target=self._worker, daemon=True,
                             name=f"scan-scorer-{i}")
            for i in range(workers)
        ]
        for thread in self._threads:
            thread.start()

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._poison()
        for thread in self._threads:
            thread.join()

    def _worker(self) -> None:
        while True:
            jobs = self._drain()
            if jobs is None:
                return
            with no_grad():
                for chunk, ids in self._grouped(jobs):
                    try:
                        scores = self.model.predict_proba(ids)
                    except BaseException as error:  # surface to caller
                        for pending, _ in chunk:
                            pending._fail(error)
                        continue
                    self._record_batch(chunk)
                    for (pending, index), score in zip(chunk, scores):
                        pending._complete(index, float(score))


class ProcessScorer(Scorer):
    """Multi-process backend: the GIL-free scoring path.

    The parent keeps the batching policy (one dispatcher thread drains
    the submission queue and forms length-grouped batches — identical
    grouping to :class:`ThreadScorer`, so scores stay byte-identical)
    and feeds batches to a shared
    :class:`~repro.core.scorer_pool.ScorerPool` — the one process-pool
    implementation this backend shares with the engine's
    ``ScoreStage(workers=N)`` mode.  Model weights cross the process
    boundary once, as a :class:`~repro.nn.serialize.SharedWeights`
    block every worker maps read-only; the pool's collector thread
    routes results back to their :class:`_Pending` entries and fails
    affected scans when workers die instead of hanging them.
    """

    def __init__(self, model, batch_size: int, workers: int,
                 telemetry, *, start_method: str = "spawn",
                 restart_policy: RestartPolicy | None = None):
        super().__init__(batch_size, workers, telemetry)
        self._pool = ScorerPool(model, workers,
                                start_method=start_method,
                                restart_policy=restart_policy,
                                telemetry=telemetry)
        self._dispatcher = threading.Thread(
            target=self._dispatch, daemon=True,
            name="scan-scorer-dispatch")
        self._dispatcher.start()

    def submit(self, samples: Sequence[Sequence[int]]) -> _Pending:
        if self._pool.broken is not None:
            raise PoolBroken(
                f"scorer workers died: {self._pool.broken}")
        return super().submit(samples)

    def health(self) -> dict:
        if self._closed:
            return {"status": "closed"}
        return self._pool.health()

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._poison()
        self._dispatcher.join()  # drains queued submissions first
        self._pool.close()

    def _infra_failure(self, message: str) -> RuntimeError:
        """Typed failure: pool breakage (retryable on a fallback
        backend) vs a per-job model error (would recur anywhere)."""
        if self._pool.broken is not None:
            return PoolBroken(message)
        return RuntimeError(message)

    def _dispatch(self) -> None:
        while True:
            jobs = self._drain()
            if jobs is None:
                return
            for chunk, ids in self._grouped(jobs):
                self._record_batch(chunk)
                try:
                    self._pool.submit(ids, chunk, self._deliver)
                except RuntimeError as error:
                    # pool broken mid-drain: fail this chunk instead
                    # of dropping it silently
                    failure = self._infra_failure(str(error))
                    for pending, _ in chunk:
                        pending._fail(failure)

    def _deliver(self, chunk, scores, error) -> None:
        """Pool callback: route one batch's result to its cases."""
        if error is not None:
            failure = self._infra_failure(
                f"scorer worker failed: {error}")
            for pending, _ in chunk:
                pending._fail(failure)
            return
        for (pending, index), score in zip(chunk, scores):
            pending._complete(index, float(score))


class InlineScorer(Scorer):
    """Terminal fallback: serial ``predict_proba`` on the submitting
    thread.

    No queue, no workers — :meth:`submit` scores the case before
    returning, with the same length-grouping as the batched backends,
    so verdicts stay byte-identical while the only remaining failure
    domain is the caller's own thread.  Slow under load by design:
    this is the degraded mode that keeps a scan answering after both
    process and thread backends are gone.
    """

    def __init__(self, model, batch_size: int, workers: int,
                 telemetry):
        super().__init__(batch_size, workers, telemetry)
        self.model = model

    def submit(self, samples: Sequence[Sequence[int]]) -> _Pending:
        if self._closed:
            raise RuntimeError("scorer is closed")
        pending = self._make_pending(samples)
        if pending.rows:
            with no_grad():
                for chunk, ids in self._grouped([pending]):
                    try:
                        scores = self.model.predict_proba(ids)
                    except BaseException as error:
                        for job, _ in chunk:
                            job._fail(error)
                        continue
                    self._record_batch(chunk)
                    for (job, index), score in zip(chunk, scores):
                        job._complete(index, float(score))
        return pending

    def close(self) -> None:
        self._closed = True


_SCORER_BACKENDS = {"thread": ThreadScorer, "process": ProcessScorer,
                    "inline": InlineScorer}

#: Circuit-breaker demotion order: each step trades throughput for a
#: smaller failure domain; verdicts stay byte-identical at every step.
_FALLBACK_CHAIN = ("process", "thread", "inline")


@dataclass
class _CaseWork:
    """Bookkeeping for one submitted case between the two passes."""

    case: TestCase
    fingerprint: str
    started: float
    verdict: CaseVerdict | None = None  # resolved without scoring
    gadgets: list = field(default_factory=list)
    pending: _Pending | None = None
    #: single-flight dedup: a later duplicate fingerprint in the same
    #: scan rides the first occurrence instead of re-extracting
    leader: "_CaseWork | None" = None
    #: set once _admit has attached a verdict or scorer submission —
    #: the buffer-and-release gate :meth:`ScanService.scan_stream`
    #: waits on to emit verdicts in input order
    ready: threading.Event = field(default_factory=threading.Event)


class _SubmitStage(Stage):
    """Engine stage feeding extraction results to the scorer.

    Consumes the :class:`~repro.core.extract.CaseResult` chunks an
    upstream ``ExtractStage(per_case=True)`` emits (in submission
    order, matching ``entries``) and hands each case's gadgets to the
    service's scorer — the downstream half of the scan pipeline's
    extract/score overlap.
    """

    name = "submit"
    streaming = True

    def __init__(self, service: "ScanService",
                 entries: Sequence[_CaseWork]):
        self.service = service
        self._entries = iter(entries)

    def process(self, chunk: Sequence[CaseResult],
                ctx: RunContext) -> list[_CaseWork]:
        out = []
        for result in chunk:
            entry = self.service._admit(next(self._entries), result)
            entry.ready.set()
            out.append(entry)
        return out


class ScanService:
    """Long-lived batched scanning facade over a trained detector.

    Usage::

        with ScanService(detector, workers=2, batch_size=64) as scans:
            verdicts = scans.scan_cases(cases)

    The service is safe to call from multiple threads; per-case
    verdicts are returned in submission order and are byte-identical
    to serial ``detector.detect_case`` results.
    """

    def __init__(self, detector: SEVulDet, *, workers: int = 2,
                 batch_size: int = 64,
                 result_cache_size: int = 1024,
                 result_cache: ResultCache | ShardedResultCache
                 | None = None,
                 telemetry: Telemetry | None = None,
                 scorer: str = "thread",
                 dtype: str | None = None,
                 calibration: Sequence[TestCase] | None = None,
                 restart_policy: RestartPolicy | None = None,
                 fn_cache=None):
        model, self._vocab = detector._require_trained()
        # Reduced-precision serving: quantize before the config token
        # is computed, so cached verdicts can never cross dtypes.
        if dtype is not None and \
                coerce_inference_dtype(dtype) != detector.inference_dtype:
            detector.quantize(dtype, calibration)
        model.eval()  # deterministic scoring: dropout off, once
        self.detector = detector
        # Service-lifetime telemetry: stats() reflects this service's
        # scans, not whatever the detector accumulated during fit.
        self.telemetry = (telemetry if telemetry is not None
                          else Telemetry())
        self.config_token = detector.config_token()
        # A caller-supplied cache outlives this service (e.g. across
        # restarts); config tokens keep shared entries safe.
        self.results = (result_cache if result_cache is not None
                        else ResultCache(result_cache_size))
        if scorer not in _SCORER_BACKENDS:
            raise ValueError(
                f"unknown scorer backend {scorer!r}; choose from "
                f"{sorted(_SCORER_BACKENDS)}")
        self._model = model
        self._batch_size = batch_size
        self._workers = workers
        self._restart_policy = restart_policy
        #: function-level incremental extraction cache (a
        #: FunctionGadgetCache or a directory path); when set, changed
        #: files re-slice only their edited call components
        self.fn_cache = fn_cache
        self.scorer_kind = scorer
        self._scorer = self._make_scorer(scorer)
        self._fallback_lock = threading.Lock()
        self._degraded: str | None = None
        self._retired: list[threading.Thread] = []
        self._submit_lock = threading.Lock()
        self._closed = False

    def _make_scorer(self, kind: str) -> Scorer:
        backend = _SCORER_BACKENDS[kind]
        if backend is ProcessScorer:
            return ProcessScorer(self._model, self._batch_size,
                                 self._workers, self.telemetry,
                                 restart_policy=self._restart_policy)
        return backend(self._model, self._batch_size, self._workers,
                       self.telemetry)

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Drain and join the scoring workers (idempotent)."""
        if not self._closed:
            self._closed = True
            with self._fallback_lock:
                scorer = self._scorer
                retired = list(self._retired)
            scorer.close()
            for thread in retired:  # demoted backends mid-teardown
                thread.join(timeout=30.0)

    def __enter__(self) -> "ScanService":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # -- scanning ------------------------------------------------------------

    def scan_case(self, case: TestCase) -> CaseVerdict:
        """Scan one case (convenience wrapper)."""
        return self.scan_cases([case])[0]

    def scan_cases(self, cases: Sequence[TestCase]
                   ) -> list[CaseVerdict]:
        """Scan a corpus; verdicts come back in submission order.

        Materialized :meth:`scan_stream` — same verdicts, same order.
        """
        return list(self.scan_stream(cases))

    def scan_stream(self, cases: Sequence[TestCase]
                    ) -> Iterator[CaseVerdict]:
        """Scan a corpus, yielding verdicts *in input order* as they
        resolve.

        Pass 1 resolves what it can from the result cache, then runs
        the remaining cases through a streaming
        :class:`~repro.core.engine.Engine` — an extraction stage
        feeding a scorer-submission stage across a prefetch boundary,
        so extraction of later case chunks overlaps scoring of earlier
        ones (and both share the detector's gadget cache, quarantine,
        and the service's function-level ``fn_cache`` via the
        :class:`~repro.core.engine.RunContext`).  The engine drains on
        a background thread while this generator releases each case
        as soon as *it and everything before it* is admitted:
        buffer-and-release by case index, so the stream order is the
        input order no matter how extraction chunks or scorer batches
        interleave — the stability diff/watch verdict-delta
        computation depends on (workers only change timing, never
        order; pinned by the ``--workers 4`` determinism test).

        Concurrent calls are *not* serialized: the submission lock
        covers only the cheap cache-lookup/dedup bookkeeping, so one
        caller's extraction pass overlaps another's (extraction is
        safe to run concurrently — the gadget cache writes with
        atomic replace and the quarantine log is append-only, and the
        scorer queue is shared by design).  Duplicate fingerprints
        within one call are single-flighted: the first occurrence is
        extracted and scored, later ones copy its verdict — a case's
        fingerprint covers its name and content, so the copies are
        byte-identical to scoring each duplicate independently.
        """
        if self._closed:
            raise RuntimeError("scan service is closed")
        scan_start = time.perf_counter()
        cases = list(cases)
        work: list[_CaseWork] = []
        misses: list[_CaseWork] = []
        with self._submit_lock:
            leaders: dict[str, _CaseWork] = {}
            for case in cases:
                entry = self._lookup_case(case)
                work.append(entry)
                if entry.verdict is not None:
                    continue
                leader = leaders.get(entry.fingerprint)
                if leader is not None:
                    entry.leader = leader
                    self.telemetry.count("scan_dedup_hits")
                    continue
                leaders[entry.fingerprint] = entry
                misses.append(entry)
        drain: threading.Thread | None = None
        drain_error: list[BaseException] = []
        if misses:
            detector = self.detector
            ctx = RunContext.create(
                cache=detector.cache,
                fn_cache=self.fn_cache,
                quarantine=detector.quarantine,
                telemetry=self.telemetry,
                case_timeout=detector.case_timeout,
                workers=detector.workers)
            engine = Engine(
                ExtractStage(detector.gadget_kind,
                             detector.categories,
                             deduplicate=False, per_case=True),
                _SubmitStage(self, misses),
                ctx=ctx, chunk_size=16)

            def _drain() -> None:
                try:
                    for _ in engine.stream(e.case for e in misses):
                        pass
                except BaseException as error:
                    drain_error.append(error)
                finally:
                    # unblock the release loop even on failure; any
                    # entry left un-admitted re-raises below
                    for entry in misses:
                        entry.ready.set()

            drain = threading.Thread(target=_drain, daemon=True,
                                     name="scan-extract-drain")
            drain.start()
        try:
            for entry in work:
                if entry.verdict is None:
                    (entry.leader or entry).ready.wait()
                    if drain_error and entry.pending is None \
                            and entry.verdict is None \
                            and entry.leader is None:
                        raise drain_error[0]
                yield self._resolve_case(entry)
            if drain is not None:
                drain.join()
                if drain_error:
                    raise drain_error[0]
        finally:
            if drain is not None:
                drain.join()
            self.telemetry.add_stage(
                "scan", time.perf_counter() - scan_start)
            self.telemetry.count("scan_cases", len(cases))

    def scan_paths(self, paths: Iterable[str | Path],
                   pattern: str = "*.c") -> list[CaseVerdict]:
        """Scan files / directories (directories recurse over
        ``pattern``); missing paths raise ``FileNotFoundError``."""
        files = expand_scan_paths(paths, pattern)
        return self.scan_cases([case_for_file(path) for path in files])

    # -- internals -----------------------------------------------------------

    def _lookup_case(self, case: TestCase) -> _CaseWork:
        """Pass-1 head: resolve from the result cache or mark the
        entry for extraction (``verdict`` stays None)."""
        started = time.perf_counter()
        fingerprint = case.fingerprint()
        entry = _CaseWork(case, fingerprint, started)
        cached = self.results.get(fingerprint, self.config_token)
        if cached is not None:
            self.telemetry.count("scan_result_hits")
            entry.verdict = replace(cached, cached=True,
                                    seconds=time.perf_counter()
                                    - started)
            return entry
        self.telemetry.count("scan_result_misses")
        return entry

    def _admit(self, entry: _CaseWork,
               result: CaseResult) -> _CaseWork:
        """Pass-1 tail: turn one extraction result into a skipped
        verdict or a scorer submission."""
        if result.failure is not None:
            entry.verdict = self._finish(
                entry, CaseVerdict(
                    name=entry.case.name,
                    fingerprint=entry.fingerprint,
                    status="skipped", reason=result.failure.reason))
            return entry
        entry.gadgets = result.gadgets
        entry.pending = self._submit_samples(
            [g.sample(self._vocab).token_ids
             for g in result.gadgets])
        return entry

    # -- self-healing --------------------------------------------------------

    def _demote(self, failed: Scorer, reason: str) -> Scorer:
        """Circuit-breaker step: replace ``failed`` with the next
        backend down :data:`_FALLBACK_CHAIN`.

        Idempotent under concurrency — if another thread already
        swapped the scorer (or the service is closing), the current
        scorer is returned untouched; when the chain is exhausted the
        failed scorer itself comes back and the caller re-raises.
        """
        with self._fallback_lock:
            if self._scorer is not failed or self._closed:
                return self._scorer
            index = (_FALLBACK_CHAIN.index(self.scorer_kind)
                     if self.scorer_kind in _FALLBACK_CHAIN else 0)
            if index + 1 >= len(_FALLBACK_CHAIN):
                return self._scorer  # nothing left to fall back to
            next_kind = _FALLBACK_CHAIN[index + 1]
            replacement = self._make_scorer(next_kind)
            self._scorer = replacement
            self.scorer_kind = next_kind
            self._degraded = reason
            self.telemetry.count("scan_fallbacks")
            self.telemetry.event("scorer_fallback", to=next_kind,
                                 reason=str(reason)[:200])
        # retire the dead backend off the hot path; its close() joins
        # workers and may take seconds.  close() joins these threads
        # so a service teardown never leaves a half-closed pool whose
        # queue feeder would wedge interpreter exit.
        retire = threading.Thread(target=failed.close, daemon=True,
                                  name="scan-scorer-retire")
        with self._fallback_lock:
            self._retired.append(retire)
        retire.start()
        return replacement

    def _submit_samples(self, samples) -> _Pending:
        """Submit through the current scorer, demoting past broken
        backends; only infrastructure failures (:class:`PoolBroken`)
        trigger fallback — model errors would recur anywhere."""
        scorer = self._scorer
        while True:
            try:
                return scorer.submit(samples)
            except PoolBroken as error:
                self.telemetry.count("scan_retries")
                replacement = self._demote(
                    scorer, f"scorer pool broken: {error}")
                if replacement is scorer:
                    raise
                scorer = replacement

    def _resolve_case(self, entry: _CaseWork) -> CaseVerdict:
        if entry.verdict is not None:
            return entry.verdict
        if entry.leader is not None:
            # single-flight follower: same fingerprint means same
            # name and content, so the leader's verdict IS this
            # case's verdict
            entry.verdict = self._resolve_case(entry.leader)
            return entry.verdict
        assert entry.pending is not None
        while True:
            try:
                scores = entry.pending.result()
                break
            except PoolBroken as error:
                # the pool died holding this case: demote and rescore
                # the same padded rows on the fallback backend —
                # padding is idempotent, so the verdict is unchanged
                self.telemetry.count("scan_retries")
                failed = entry.pending.scorer or self._scorer
                replacement = self._demote(
                    failed, f"scorer pool broken: {error}")
                if replacement is failed:
                    raise
                # _submit_samples so a fallback that breaks mid-swap
                # cascades down the chain instead of raising here
                entry.pending = self._submit_samples(
                    entry.pending.rows)
        findings = self.detector.findings_from(
            entry.case.name, entry.gadgets, scores)
        verdict = CaseVerdict(
            name=entry.case.name, fingerprint=entry.fingerprint,
            status="flagged" if findings else "clean",
            findings=tuple(findings), gadgets=len(entry.gadgets),
            max_score=float(scores.max()) if len(scores) else 0.0)
        entry.verdict = self._finish(entry, verdict)
        return entry.verdict

    def _finish(self, entry: _CaseWork,
                verdict: CaseVerdict) -> CaseVerdict:
        """Stamp latency, record it, and memoize the verdict."""
        seconds = time.perf_counter() - entry.started
        verdict = replace(verdict, seconds=seconds)
        self.telemetry.observe("scan_case_seconds", seconds)
        self.results.put(entry.fingerprint, self.config_token,
                         verdict)
        return verdict

    # -- introspection -------------------------------------------------------

    def health(self) -> dict:
        """Service health for the server's ``health`` op.

        ``ready`` — primary backend at full strength; ``degraded`` —
        serving on a fallback backend or with lost pool workers
        (verdicts unaffected, throughput reduced); ``draining`` —
        closed, rejecting new scans.
        """
        scorer_health = self._scorer.health()
        if self._closed:
            status = "draining"
        elif (self._degraded is not None
              or scorer_health["status"] not in ("ok",)):
            status = "degraded"
        else:
            status = "ready"
        return {
            "status": status,
            "scorer": self.scorer_kind,
            "scorer_health": scorer_health,
            "degraded_reason": self._degraded,
        }

    def stats(self) -> dict:
        """Service-level scan statistics (summary + benchmarks)."""
        telemetry = self.telemetry
        return {
            "cases": telemetry.get("scan_cases"),
            "cases_per_sec": telemetry.rate("scan_cases", "scan"),
            "batches": telemetry.get("scan_batches"),
            "scored_gadgets": telemetry.get("scan_scored_gadgets"),
            "result_cache": {
                "hits": self.results.hits,
                "misses": self.results.misses,
                "hit_rate": self.results.hit_rate(),
                "size": len(self.results),
            },
            "latency_seconds":
                telemetry.observation_stats("scan_case_seconds"),
            "batch_fill":
                telemetry.observation_stats("scan_batch_fill"),
            "queue_depth":
                telemetry.observation_stats("scan_queue_depth"),
            "resilience": {
                "health": self.health()["status"],
                "scorer": self.scorer_kind,
                "fallbacks": telemetry.get("scan_fallbacks"),
                "retries": telemetry.get("scan_retries"),
                "worker_deaths": telemetry.get("pool_worker_deaths"),
                "respawns": telemetry.get("pool_respawns"),
                "resubmitted_jobs":
                    telemetry.get("pool_resubmitted_jobs"),
                "degraded_reason": self._degraded,
            },
        }
