"""Detector protocol + matrix runner tests.

The load-bearing one is the parity pin: a :class:`FrameworkDetector`
cell must reproduce ``train_and_evaluate``'s metrics exactly on the
same seed — the protocol refactor moved wiring, not numbers.  Runs at
a deliberately tiny scale so the whole module stays fast.
"""

import json

import pytest

from repro.baselines import FlawfinderScanner, VuddyScanner
from repro.core.config import Scale
from repro.core.engine import RunContext
from repro.datasets.adapters import FixedCorpusAdapter, SardAdapter
from repro.datasets.sard import generate_sard_corpus
from repro.eval.comparison import FRAMEWORKS, train_and_evaluate
from repro.eval.detector import (FrameworkDetector, FuzzDetector,
                                 Prediction, StaticToolDetector,
                                 build_detector, default_detectors)
from repro.eval.matrix import MatrixRunner, run_matrix

TINY = Scale("tiny", cases_per_experiment=24, dim=6, channels=6,
             hidden=6, epochs=2, batch_size=8, time_steps=24,
             w2v_epochs=1)


@pytest.fixture(scope="module")
def corpus():
    return (generate_sard_corpus(24, seed=101),
            generate_sard_corpus(12, seed=201))


class TestFrameworkDetectorParity:
    @pytest.mark.parametrize("framework", ["SEVulDet", "SySeVR"])
    def test_metrics_equal_serial_path(self, corpus, framework):
        train, test = corpus
        legacy, _ = train_and_evaluate(
            FRAMEWORKS[framework], train, test, TINY, seed=17)
        detector = FrameworkDetector(framework, TINY, seed=17)
        ctx = RunContext.create()
        detector.fit(train, ctx)
        prediction = detector.predict(test, ctx)
        labels = [1 if case.vulnerable else 0 for case in test]
        assert prediction.metrics(labels) == legacy

    def test_predict_before_fit_raises(self, corpus):
        _, test = corpus
        detector = FrameworkDetector("SEVulDet", TINY)
        with pytest.raises(RuntimeError):
            detector.predict(test, RunContext.create())

    def test_case_verdicts_aligned_and_thresholded(self, corpus):
        train, test = corpus
        detector = FrameworkDetector("SEVulDet", TINY, seed=17)
        ctx = RunContext.create()
        detector.fit(train, ctx)
        prediction = detector.predict(test, ctx)
        assert len(prediction.verdicts) == len(test)
        assert len(prediction.scores) == len(test)
        assert prediction.basis == "gadget"
        for verdict, score in zip(prediction.verdicts,
                                  prediction.scores):
            assert verdict == (1 if score >= detector.threshold
                               else 0)


class TestStaticToolDetector:
    def test_telemetry_routed(self, corpus):
        _, test = corpus
        ctx = RunContext.create()
        detector = StaticToolDetector(FlawfinderScanner())
        prediction = detector.predict(test, ctx)
        assert len(prediction.verdicts) == len(test)
        assert prediction.basis == "case"
        assert ctx.telemetry.get("tool_cases:Flawfinder") == len(test)
        assert ctx.telemetry.calls("tool:Flawfinder") == 1
        assert ctx.telemetry.rate("tool_cases:Flawfinder",
                                  "tool:Flawfinder") > 0

    def test_fit_feeds_clone_reference(self, corpus):
        train, _ = corpus
        ctx = RunContext.create()
        detector = StaticToolDetector(VuddyScanner())
        detector.fit(train, ctx)
        vulnerable = next(case for case in train if case.vulnerable)
        prediction = detector.predict([vulnerable], ctx)
        assert prediction.verdicts == [1]


class TestFuzzDetector:
    def test_bounded_campaigns(self, corpus):
        _, test = corpus
        ctx = RunContext.create()
        detector = FuzzDetector(max_execs=20, max_steps=400)
        prediction = detector.predict(test[:4], ctx)
        assert len(prediction.verdicts) == 4
        assert set(prediction.verdicts) <= {0, 1}

    def test_unparseable_source_is_a_miss(self):
        from repro.datasets.manifest import TestCase

        broken = TestCase(name="broken.c", source="int main( {{{",
                          vulnerable=True, vulnerable_lines=frozenset(),
                          cwe="CWE-1", category="FC")
        ctx = RunContext.create()
        prediction = FuzzDetector(max_execs=5).predict([broken], ctx)
        assert prediction.verdicts == [0]


class TestBuildDetector:
    def test_registry_names(self):
        assert build_detector("sevuldet").name == "SEVulDet"
        assert build_detector("flawfinder").name == "Flawfinder"
        assert build_detector("afl").name == "AFL"
        with pytest.raises(ValueError):
            build_detector("nope")

    def test_default_lineup_covers_families(self):
        lineup = default_detectors(scale=TINY)
        names = {detector.name for detector in lineup}
        assert "SEVulDet" in names  # the paper's system
        assert "SySeVR" in names  # a BRNN framework
        assert len(names & {"Flawfinder", "RATS", "Checkmarx",
                            "VUDDY"}) >= 2
        assert "AFL" in names


class _Exploding:
    name = "Exploding"

    def predict(self, cases, ctx):
        raise RuntimeError("boom")


class TestMatrixRunner:
    def test_grid_runs_and_errors_are_cells(self, corpus, tmp_path):
        train, test = corpus
        adapter = FixedCorpusAdapter("fixed", train, test)
        result = run_matrix(
            ["flawfinder", "rats", _Exploding()], [adapter],
            baseline="flawfinder", seed=5, out_dir=tmp_path,
            resamples=50)
        assert len(result.cells) == 3
        exploded = result.cell("Exploding", "fixed")
        assert not exploded.ok
        assert "boom" in exploded.error
        good = result.cell("flawfinder", "fixed")
        assert good.ok and good.metrics is not None
        # baseline comparison attached to every ok cell
        assert good.significance["delta"] == 0.0
        assert result.cell("rats", "fixed").significance is not None
        # artifacts on disk
        assert (tmp_path / "matrix_leaderboard.txt").exists()
        assert (tmp_path / "matrix_leaderboard.md").exists()
        payload = json.loads((tmp_path / "matrix.json").read_text())
        assert {cell["detector"] for cell in payload["cells"]} == \
            {"Flawfinder", "RATS", "Exploding"}

    def test_resume_uses_cached_cells(self, corpus, tmp_path):
        train, test = corpus
        adapter = FixedCorpusAdapter("fixed", train, test)
        first = run_matrix(["flawfinder"], [adapter], seed=5,
                           out_dir=tmp_path, resamples=20)

        class _NeverCalled:
            name = "Flawfinder"

            def predict(self, cases, ctx):
                raise AssertionError("cache should have been used")

        second = run_matrix([_NeverCalled()], [adapter], seed=5,
                            out_dir=tmp_path, resamples=20)
        assert second.cells[0].to_json() == first.cells[0].to_json()

    def test_no_resume_recomputes(self, corpus, tmp_path):
        train, test = corpus
        adapter = FixedCorpusAdapter("fixed", train, test)
        run_matrix(["flawfinder"], [adapter], seed=5,
                   out_dir=tmp_path, resamples=20)
        calls = []

        class _Counting:
            name = "Flawfinder"

            def predict(self, cases, ctx):
                calls.append(len(cases))
                return Prediction(detector=self.name,
                                  verdicts=[0] * len(cases),
                                  scores=[0.0] * len(cases))

        run_matrix([_Counting()], [adapter], seed=5,
                   out_dir=tmp_path, resume=False, resamples=20)
        assert calls  # recomputed despite the cached cell

    def test_corrupt_cell_artifact_recomputed(self, corpus, tmp_path):
        train, test = corpus
        adapter = FixedCorpusAdapter("fixed", train, test)
        run_matrix(["flawfinder"], [adapter], seed=5,
                   out_dir=tmp_path, resamples=20)
        cell_file = next((tmp_path / "cells").iterdir())
        cell_file.write_text("{ torn", encoding="utf-8")
        result = run_matrix(["flawfinder"], [adapter], seed=5,
                            out_dir=tmp_path, resamples=20)
        assert result.cells[0].ok
        assert json.loads(cell_file.read_text())["status"] == "ok"

    def test_dataset_column_shares_split(self, tmp_path):
        # two detectors in one column must see identical test cases —
        # the alignment paired_bootstrap depends on
        seen = {}

        class _Spy:
            def __init__(self, name):
                self.name = name

            def predict(self, cases, ctx):
                seen[self.name] = [case.name for case in cases]
                return Prediction(detector=self.name,
                                  verdicts=[0] * len(cases),
                                  scores=[0.0] * len(cases))

        run_matrix([_Spy("a"), _Spy("b")], [SardAdapter(8, 6)],
                   seed=3, resamples=0)
        assert seen["a"] == seen["b"]

    def test_leaderboard_renders_error_rows(self, corpus):
        train, test = corpus
        adapter = FixedCorpusAdapter("fixed", train, test)
        result = run_matrix([_Exploding(), "flawfinder"], [adapter],
                            baseline="flawfinder", seed=5,
                            resamples=0)
        text = result.leaderboard().render()
        assert "error: RuntimeError: boom" in text
        assert "baseline" in text
        markdown = result.leaderboard().markdown()
        assert markdown.startswith("## Benchmark matrix")


class TestPredictionMetrics:
    def test_case_basis_uses_labels(self):
        prediction = Prediction(detector="x", verdicts=[1, 0, 1, 0],
                                scores=[1.0, 0.0, 1.0, 0.0])
        metrics = prediction.metrics([1, 0, 0, 1])
        assert metrics.accuracy == 0.5

    def test_gadget_basis_uses_gadget_labels(self):
        prediction = Prediction(
            detector="x", verdicts=[1], scores=[0.9], basis="gadget",
            gadget_scores=[0.9, 0.2, 0.8], gadget_labels=[1, 0, 0],
            threshold=0.5)
        metrics = prediction.metrics([1])
        # decisions 1/0/1 vs labels 1/0/0 -> one false positive
        assert metrics.accuracy == pytest.approx(2 / 3)
        # case-level view still available
        assert prediction.case_metrics([1]).accuracy == 1.0
