"""Gadget normalization (paper Step III).

User-defined function and variable names carry no vulnerability signal
but inflate the vocabulary, so they are renamed in a mapping style to
``fun1, fun2, ...`` / ``var1, var2, ...``.  Macros, library/API function
names, keywords, and constants stay intact; non-ASCII characters are
removed.  The result is the symbolic token sequence the embedding step
consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

from ..lang.dataflow import LIBRARY_FUNCTIONS
from ..lang.lexer import KEYWORDS, TokenKind, tokenize
from .gadget import CodeGadget

__all__ = ["NORMALIZE_VERSION", "NormalizedGadget", "Normalizer",
           "normalize_gadget", "tokenize_gadget_text"]

#: Bump when normalization output changes for the same input — the
#: content-addressed extraction cache folds this into its keys so stale
#: token streams can never be served after a normalizer change.
NORMALIZE_VERSION = 1


def _ascii_only(text: str) -> str:
    return text.encode("ascii", errors="ignore").decode("ascii")


_RENAME = 0  # identifier: needs the gadget's stateful renaming
_VERBATIM = 1  # everything else: emitted as-is


@lru_cache(maxsize=8192)
def _lexed(text: str) -> tuple[tuple[int, str, bool], ...]:
    """Pure lexing of one statement: (op, payload, is_call) triples.

    Lexing is by far the hottest part of normalization and the same
    statement text recurs across overlapping gadgets of one file (and
    across files — declarations, braces, common calls), so the
    stateless part is cached; :meth:`Normalizer.normalize_text` replays
    the triples through the per-gadget renaming state.
    """
    ops: list[tuple[int, str, bool]] = []
    tokens = tokenize(_ascii_only(text))
    for index, token in enumerate(tokens):
        if token.kind is TokenKind.EOF:
            break
        if token.kind is TokenKind.IDENT:
            is_call = (index + 1 < len(tokens)
                       and tokens[index + 1].is_punct("("))
            ops.append((_RENAME, token.text, is_call))
        elif token.kind is TokenKind.STRING:
            ops.append((_VERBATIM, '"STR"', False))
        elif token.kind is TokenKind.ERROR:
            continue  # stray bytes add nothing
        else:
            ops.append((_VERBATIM, token.text, False))
    return tuple(ops)


@dataclass
class NormalizedGadget:
    """Symbolic token sequence of one gadget.

    Attributes:
        tokens: the normalized token stream.
        var_map / fun_map: original name -> symbolic name.
        gadget: the source gadget (kept for label/metadata access).
    """

    tokens: list[str]
    var_map: dict[str, str]
    fun_map: dict[str, str]
    gadget: CodeGadget | None = None

    @property
    def label(self) -> int | None:
        return self.gadget.label if self.gadget is not None else None

    def __len__(self) -> int:
        return len(self.tokens)


@dataclass
class Normalizer:
    """Stateful renamer: one instance per gadget keeps mappings
    consistent across all of the gadget's lines."""

    keep_names: frozenset[str] = frozenset(LIBRARY_FUNCTIONS)
    var_map: dict[str, str] = field(default_factory=dict)
    fun_map: dict[str, str] = field(default_factory=dict)

    def _symbol_for(self, name: str, *, is_call: bool) -> str:
        if name in self.keep_names or name in KEYWORDS:
            return name
        if is_call:
            if name not in self.fun_map:
                self.fun_map[name] = f"fun{len(self.fun_map) + 1}"
            return self.fun_map[name]
        if name in self.fun_map:  # function name used without call parens
            return self.fun_map[name]
        if name not in self.var_map:
            self.var_map[name] = f"var{len(self.var_map) + 1}"
        return self.var_map[name]

    def normalize_text(self, text: str) -> list[str]:
        """Tokenize and normalize one chunk of gadget text."""
        return [self._symbol_for(payload, is_call=is_call)
                if op == _RENAME else payload
                for op, payload, is_call in _lexed(text)]


def normalize_gadget(gadget: CodeGadget,
                     keep_names: frozenset[str] | None = None
                     ) -> NormalizedGadget:
    """Normalize a gadget into its symbolic token sequence."""
    normalizer = Normalizer(keep_names=keep_names
                            or frozenset(LIBRARY_FUNCTIONS))
    tokens: list[str] = []
    for line in gadget.lines:
        tokens.extend(normalizer.normalize_text(line.text))
    return NormalizedGadget(tokens, dict(normalizer.var_map),
                            dict(normalizer.fun_map), gadget)


def tokenize_gadget_text(text: str) -> list[str]:
    """Tokenize gadget text *without* renaming (used by baselines that
    need original identifiers, e.g. VUDDY at abstraction level 0)."""
    return [t.text for t in tokenize(_ascii_only(text))
            if t.kind is not TokenKind.EOF]
