"""Shared infrastructure for the experiment benchmarks.

Each ``test_*`` file regenerates one table or figure of the paper at
the scale selected by ``REPRO_SCALE`` (default ``small``).  Results are
printed and written under ``benchmarks/results/`` so EXPERIMENTS.md can
cite them; assertions encode the qualitative *shape* each experiment
must reproduce (who wins, where the trade-offs sit).
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.core.config import current_scale
from repro.eval.report import Table
from repro.datasets.nvd import generate_nvd_corpus
from repro.datasets.sard import generate_sard_corpus
from repro.datasets.xen import generate_xen_corpus

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def scale():
    return current_scale()


@pytest.fixture(scope="session")
def train_cases(scale):
    """Mixed SARD+NVD training corpus (the paper trains on both)."""
    sard = generate_sard_corpus(scale.cases_per_experiment, seed=101)
    nvd = generate_nvd_corpus(max(scale.cases_per_experiment // 10, 5),
                              seed=102)
    return sard + nvd


@pytest.fixture(scope="session")
def xen_train_cases(scale):
    """Xen-flavoured training supplement: template cases only — the
    handcrafted CVE miniatures are excluded (held out for Table VII)."""
    corpus = generate_xen_corpus(
        max(scale.cases_per_experiment // 2, 30), seed=777)
    return [case for case in corpus if "cve" not in case.meta]


@pytest.fixture(scope="session")
def test_cases(scale):
    """Held-out evaluation corpus, disjoint seeds."""
    count = max(scale.cases_per_experiment // 2, 20)
    return generate_sard_corpus(count, seed=201)


class TableReporter(Table):
    """A library Table that also persists under benchmarks/results/."""

    def save_and_print(self) -> str:
        self.save(RESULTS_DIR)
        text = self.render()
        print("\n" + text)
        return text


@pytest.fixture
def reporter():
    return TableReporter


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
