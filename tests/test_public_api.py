"""Public API surface checks: the names README/docs promise exist."""

import importlib

import pytest


class TestTopLevel:
    def test_quickstart_names(self):
        import repro
        assert callable(repro.generate_sard_corpus)
        assert callable(repro.generate_nvd_corpus)
        assert callable(repro.generate_xen_corpus)
        detector = repro.SEVulDet
        assert hasattr(detector, "fit") and hasattr(detector, "detect")

    def test_all_exports_resolve(self):
        import repro
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    def test_version(self):
        import repro
        assert repro.__version__

    @pytest.mark.parametrize("module", [
        "repro.lang", "repro.slicing", "repro.embedding", "repro.nn",
        "repro.models", "repro.core", "repro.datasets",
        "repro.baselines", "repro.eval",
    ])
    def test_subpackage_all_resolves(self, module):
        mod = importlib.import_module(module)
        for name in getattr(mod, "__all__", []):
            assert getattr(mod, name, None) is not None, \
                f"{module}.{name}"

    def test_documented_entry_points(self):
        from repro import SEVulDet
        from repro.baselines import (AFLFuzzer, CheckmarxScanner,
                                     FlawfinderScanner, RatsScanner,
                                     VuddyScanner)
        from repro.core import CWETyper, load_gadgets, save_gadgets
        from repro.datasets.manifest_xml import (export_corpus,
                                                 import_corpus)
        from repro.eval import (FRAMEWORKS, Table, cross_validate,
                                roc_auc)
        from repro.lang import analyze, run_program, unparse

    def test_cli_parser_commands(self):
        from repro.cli import build_parser
        parser = build_parser()
        text = parser.format_help()
        for command in ("train", "scan", "fuzz", "gadgets",
                        "export-corpus"):
            assert command in text
