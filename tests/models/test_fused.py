"""Golden pins for the fused inference forward (repro.models.fused).

The contract: ``forward_inference`` is *bitwise* identical to the
autograd ``forward`` at float32, and stays within a measured guardband
under the reduced-precision weight representations
(:mod:`repro.nn.quantize`).  These tests are what lets
``predict_proba`` route every eval-mode scoring call through the fused
kernel without re-validating the serve/engine byte-identity pins.
"""

import threading

import numpy as np
import pytest

from repro.models.sevuldet import SEVulDetNet
from repro.nn import default_dtype, no_grad
from repro.nn.quantize import apply_inference_dtype


def build(seed=1, vocab=40, dim=12, channels=8, **kw):
    net = SEVulDetNet(vocab_size=vocab, dim=dim, channels=channels,
                      seed=seed, **kw)
    net.eval()
    return net


def batch(rng, vocab=40, shape=(3, 11)):
    return rng.integers(0, vocab, size=shape)


class TestBitIdentityFloat32:
    @pytest.mark.parametrize("shape", [(1, 4), (3, 11), (5, 57),
                                       (2, 7)])
    def test_matches_graph_forward_bitwise(self, shape):
        net = build()
        ids = batch(np.random.default_rng(0), shape=shape)
        with no_grad():
            reference = net.forward(ids).data
            fused = net.forward_inference(ids)
        assert fused.dtype == reference.dtype
        assert np.array_equal(fused, reference)

    def test_scratch_reuse_stays_identical(self):
        """Second and third calls hit the preallocated buffers."""
        net = build()
        rng = np.random.default_rng(1)
        with no_grad():
            for _ in range(3):
                ids = batch(rng)
                assert np.array_equal(net.forward_inference(ids),
                                      net.forward(ids).data)

    @pytest.mark.parametrize("tok,cbam", [(False, True), (True, False),
                                          (False, False)])
    def test_ablations(self, tok, cbam):
        net = build(use_token_attention=tok, use_cbam=cbam)
        ids = batch(np.random.default_rng(2))
        with no_grad():
            assert np.array_equal(net.forward_inference(ids),
                                  net.forward(ids).data)

    def test_id_aliases_respected(self):
        net = build()
        aliases = np.arange(40, dtype=np.int64)
        aliases[30:] = 1
        net.embedding.id_aliases = aliases
        ids = batch(np.random.default_rng(3))
        with no_grad():
            assert np.array_equal(net.forward_inference(ids),
                                  net.forward(ids).data)

    def test_float64_session_bitwise(self):
        with default_dtype(np.float64):
            net = build()
            ids = batch(np.random.default_rng(4))
            with no_grad():
                fused = net.forward_inference(ids)
                assert fused.dtype == np.float64
                assert np.array_equal(fused, net.forward(ids).data)

    def test_predict_proba_routes_through_fused_in_eval(self):
        net = build()
        ids = batch(np.random.default_rng(5))
        with no_grad():
            from repro.nn import stable_sigmoid
            expected = stable_sigmoid(net.forward_inference(ids))
            assert np.array_equal(net.predict_proba(ids), expected)

    def test_thread_safety_of_scratch_buffers(self):
        """Concurrent callers (the thread scorer) must not share
        scratch — each thread's outputs stay bit-identical."""
        net = build()
        rng = np.random.default_rng(6)
        batches = [batch(rng, shape=(4, 13)) for _ in range(4)]
        with no_grad():
            expected = [net.forward(ids).data for ids in batches]
        errors = []

        def worker(index):
            try:
                with no_grad():
                    for _ in range(20):
                        got = net.forward_inference(batches[index])
                        if not np.array_equal(got, expected[index]):
                            raise AssertionError("scratch corruption")
            except BaseException as error:  # propagate to main thread
                errors.append(error)

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors


class TestReducedPrecisionGuardband:
    def _probs(self, net, ids):
        with no_grad():
            return net.predict_proba(ids).astype(np.float64)

    @pytest.mark.parametrize("dtype,tolerance", [("float16", 5e-3),
                                                 ("int8", 2e-2)])
    def test_delta_vs_float32_is_bounded(self, dtype, tolerance):
        net = build()
        ids = batch(np.random.default_rng(7), shape=(8, 15))
        base = self._probs(net, ids)
        apply_inference_dtype(net, dtype)
        delta = np.abs(self._probs(net, ids) - base)
        assert delta.max() < tolerance

    def test_float16_weights_emit_float16_scores(self):
        net = build()
        apply_inference_dtype(net, "float16")
        ids = batch(np.random.default_rng(8))
        with no_grad():
            assert net.predict_proba(ids).dtype == np.float16

    def test_int8_dequantizes_into_float32(self):
        net = build()
        apply_inference_dtype(net, "int8")
        for param in net.parameters():
            assert param.data.dtype == np.float32
        ids = batch(np.random.default_rng(9))
        with no_grad():
            assert net.predict_proba(ids).dtype == np.float32

    def test_weight_rebind_invalidates_f32_cache(self):
        """The float16 kernel caches float32 weight casts keyed on
        array identity; rebinding weights must refresh them."""
        net = build()
        apply_inference_dtype(net, "float16")
        ids = batch(np.random.default_rng(10))
        with no_grad():
            before = net.forward_inference(ids)
            net.fc3.bias.data = net.fc3.bias.data + np.float16(1.0)
            net.fc1.weight.data = (net.fc1.weight.data
                                   * np.float16(2.0))
            after = net.forward_inference(ids)
        assert not np.array_equal(before, after)


class TestAttentionWeightsModeRestore:
    def test_training_mode_survives_inspection(self):
        net = SEVulDetNet(vocab_size=20, dim=8, channels=8)
        assert net.training
        net.attention_weights(np.zeros((1, 6), dtype=np.int64))
        assert net.training
        assert net.dropout.training  # dropout still live mid-training

    def test_eval_mode_also_survives(self):
        net = SEVulDetNet(vocab_size=20, dim=8, channels=8)
        net.eval()
        net.attention_weights(np.zeros((1, 6), dtype=np.int64))
        assert not net.training
