"""Content-addressed gadget extraction cache.

The frontend (parse -> CFG -> PDG -> slice -> normalize) dominates
preprocessing cost at corpus scale, and protocols like 5-fold cross
validation re-extract the *same* cases many times.  This cache keys
each case's extracted gadgets by a hash of (case content, extraction
config, pipeline version) so repeated runs skip the frontend entirely.

Entries are stored as one JSON-lines shard per (case, config) key in a
two-level fan-out directory, reusing :mod:`repro.core.store`'s record
format — the cache is therefore diff-able, append-friendly, and safe
to prune with plain ``rm``.  Writes go through a temp file + rename so
concurrent extractors (process pools, parallel test runs) never
observe a torn shard; a corrupt or unreadable shard degrades to a
cache miss, never an error.
"""

from __future__ import annotations

import dataclasses
import hashlib
from pathlib import Path
from typing import Sequence

from ..datasets.manifest import TestCase
from ..slicing.normalize import NORMALIZE_VERSION
from ..testing import faults
from .extract import PIPELINE_VERSION, LabeledGadget
from .fingerprint import FINGERPRINT_VERSION
from .store import load_gadgets, save_gadgets

__all__ = ["GadgetCache", "FunctionGadgetCache"]


class GadgetCache:
    """On-disk cache of per-case extraction results.

    Args:
        root: cache directory (created lazily on first write).
    """

    def __init__(self, root: str | Path):
        self.root = Path(root)

    def key_for(self, case: TestCase, config_token: str) -> str:
        """Cache key for one case under one extraction config."""
        digest = hashlib.sha256()
        digest.update(case.fingerprint().encode("utf-8"))
        digest.update(b"|")
        digest.update(config_token.encode("utf-8"))
        digest.update(f"|pipeline={PIPELINE_VERSION};"
                      f"normalize={NORMALIZE_VERSION}".encode("utf-8"))
        return digest.hexdigest()

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.jsonl"

    def get(self, key: str) -> list[LabeledGadget] | None:
        """Cached gadgets for ``key``, or None on a miss.

        An unreadable or corrupt shard counts as a miss — the caller
        re-extracts and overwrites it.
        """
        path = self.path_for(key)
        if not path.exists():
            return None
        try:
            return load_gadgets(path)
        except (ValueError, OSError):
            return None

    def put(self, key: str, gadgets: Sequence[LabeledGadget]) -> None:
        """Store ``gadgets`` under ``key`` (atomic replace)."""
        path = self.path_for(key)
        save_gadgets(gadgets, path, atomic=True)
        faults.corrupt_file("shard", key, path)

    def __contains__(self, key: str) -> bool:
        return self.path_for(key).exists()

    def _shards(self):
        """Shard paths, tolerating directories vanishing mid-scan
        (concurrent ``clear()`` / external ``rm -r``)."""
        try:
            yield from self.root.glob("*/*.jsonl")
        except (FileNotFoundError, NotADirectoryError):
            return

    def __len__(self) -> int:
        """Number of cached shards."""
        if not self.root.exists():
            return 0
        return sum(1 for _ in self._shards())

    def clear(self) -> int:
        """Delete every shard; returns how many were removed.

        Safe against concurrent clearers/extractors: a shard someone
        else unlinked first is simply not counted.  Fan-out
        directories left empty are pruned so a cleared cache does not
        slowly accumulate up to 256 dead directories.
        """
        removed = 0
        if not self.root.exists():
            return removed
        for shard in list(self._shards()):
            try:
                shard.unlink()
            except FileNotFoundError:
                continue  # lost the race to a concurrent clear()
            removed += 1
        try:
            subdirs = list(self.root.iterdir())
        except (FileNotFoundError, NotADirectoryError):
            return removed
        for subdir in subdirs:
            if subdir.is_dir():
                try:
                    subdir.rmdir()
                except OSError:
                    pass  # refilled concurrently, or not empty
        return removed


class FunctionGadgetCache(GadgetCache):
    """Per-*function* gadget cache under the incremental scan path.

    Where :class:`GadgetCache` keys a whole case (one changed byte
    re-slices everything), this keys the gadgets of one function's
    criteria by the function's call-graph *component digest* (see
    :func:`~repro.core.fingerprint.component_digests`): an edit
    anywhere in the component invalidates exactly that component's
    entries and nothing else, and because interprocedural slices never
    read outside the component, a hit is byte-identical to re-slicing.

    The case *name* is deliberately excluded from the key — identical
    content under two paths (vendored copies, renames) shares entries;
    :meth:`get_function` rewrites provenance on the way out.  Labeling
    inputs (vulnerable flag, flaw lines, CWE) stay in the key because
    gadget labels depend on them.  Shards reuse the parent's record
    format and fan-out layout, so one cache root can hold both
    granularities side by side without key collisions (the
    ``function-level`` marker separates the key spaces).
    """

    def key_for_function(self, case: TestCase, function: str,
                         config_token: str,
                         component_digest: str) -> str:
        """Cache key for one function's criteria gadgets.

        ``function`` must be part of the key: every member of a call
        component shares one ``component_digest`` (editing any member
        re-slices them all), so without the name two functions in the
        same component would collide on the same entry.
        """
        digest = hashlib.sha256()
        for part in ("function-level", function, config_token,
                     f"pipeline={PIPELINE_VERSION};"
                     f"normalize={NORMALIZE_VERSION};"
                     f"fingerprint={FINGERPRINT_VERSION}",
                     str(int(case.vulnerable)),
                     ",".join(str(line) for line
                              in sorted(case.vulnerable_lines)),
                     case.cwe,
                     component_digest):
            digest.update(part.encode("utf-8"))
            digest.update(b"\x00")
        return digest.hexdigest()

    def get_function(self, key: str,
                     case_name: str) -> list[LabeledGadget] | None:
        """Cached gadgets under ``key``, re-attributed to ``case_name``.

        An empty list is a valid hit (the function's criteria all
        sliced to nothing, or it has no criteria); None is a miss.
        """
        hit = self.get(key)
        if hit is None:
            return None
        return [labeled if labeled.case_name == case_name
                else dataclasses.replace(labeled, case_name=case_name)
                for labeled in hit]

    def put_function(self, key: str,
                     gadgets: Sequence[LabeledGadget]) -> None:
        self.put(key, gadgets)
