"""Tests for the five-fold cross-validation protocol driver."""

import numpy as np
import pytest

from repro.core.pipeline import extract_gadgets
from repro.datasets.sard import generate_sard_corpus
from repro.eval.protocol import cross_validate
from repro.models.sevuldet import SEVulDetNet


@pytest.fixture(scope="module")
def gadget_pool():
    return extract_gadgets(generate_sard_corpus(60, seed=71))


def build_model(vocab_size, pretrained):
    return SEVulDetNet(vocab_size, dim=12, channels=12,
                       pretrained=pretrained, seed=1)


class TestCrossValidate:
    def test_runs_k_folds(self, gadget_pool):
        report = cross_validate(gadget_pool, build_model, k=3,
                                dim=12, epochs=4, seed=1)
        assert len(report.folds) == 3
        assert [f.fold for f in report.folds] == [0, 1, 2]

    def test_folds_partition_pool(self, gadget_pool):
        report = cross_validate(gadget_pool, build_model, k=3,
                                dim=12, epochs=2, seed=1)
        total = sum(f.test_size for f in report.folds)
        assert total == len(gadget_pool)
        for fold in report.folds:
            assert fold.train_size + fold.test_size == \
                len(gadget_pool)

    def test_sampling_caps_pool(self, gadget_pool):
        report = cross_validate(gadget_pool, build_model, k=3,
                                sample=30, dim=12, epochs=2, seed=1)
        assert sum(f.test_size for f in report.folds) == 30

    def test_summary_fields(self, gadget_pool):
        report = cross_validate(gadget_pool, build_model, k=3,
                                dim=12, epochs=2, seed=1)
        summary = report.summary()
        assert set(summary) == {"FPR(%)", "FNR(%)", "A(%)", "P(%)",
                                "F1(%)", "F1 std(%)",
                                "train(s)", "eval(s)"}
        assert 0 <= summary["F1(%)"] <= 100
        assert summary["train(s)"] > 0.0

    def test_learns_above_chance(self, gadget_pool):
        report = cross_validate(gadget_pool, build_model, k=3,
                                dim=12, epochs=10, seed=1)
        assert report.mean_f1 > 0.5

    def test_too_few_gadgets_raises(self, gadget_pool):
        with pytest.raises(ValueError):
            cross_validate(gadget_pool[:2], build_model, k=5)

    def test_deterministic_given_seed(self, gadget_pool):
        first = cross_validate(gadget_pool[:40], build_model, k=2,
                               dim=12, epochs=2, seed=9)
        second = cross_validate(gadget_pool[:40], build_model, k=2,
                                dim=12, epochs=2, seed=9)
        assert np.isclose(first.mean_f1, second.mean_f1)


class TestCaseExtractionThroughContext:
    """cross_validate(cases=..., ctx=...) runs extraction through the
    shared RunContext's gadget cache."""

    def test_repeated_protocol_runs_hit_cache(self, tmp_path):
        from repro.core.engine import RunContext
        from repro.datasets.sard import generate_sard_corpus

        cases = generate_sard_corpus(40, seed=5)
        ctx = RunContext.create(cache=tmp_path / "cache")
        first = cross_validate(None, build_model, cases=cases,
                               ctx=ctx, k=2, dim=12, epochs=2, seed=1)
        assert ctx.telemetry.get("cache_misses") == len(cases)
        assert ctx.telemetry.get("cache_hits") == 0
        second = cross_validate(None, build_model, cases=cases,
                                ctx=ctx, k=2, dim=12, epochs=2, seed=1)
        assert ctx.telemetry.get("cache_hits") == len(cases)
        assert np.isclose(first.mean_f1, second.mean_f1)

    def test_exactly_one_pool_source_required(self, gadget_pool):
        with pytest.raises(ValueError, match="exactly one"):
            cross_validate(gadget_pool, build_model, cases=[object()])
        with pytest.raises(ValueError, match="exactly one"):
            cross_validate(None, build_model)

    def test_every_fold_carries_private_telemetry(self, gadget_pool):
        report = cross_validate(gadget_pool, build_model, k=3,
                                dim=12, epochs=2, seed=1)
        assert all(f.telemetry is not None for f in report.folds)
        telemetries = [id(f.telemetry) for f in report.folds]
        assert len(set(telemetries)) == len(report.folds)
        assert all(f.telemetry.seconds("train") > 0.0
                   for f in report.folds)
